"""Synthetic CPU trace generation.

The paper's Section 2 characterization ran the PHP applications under
gem5.  Without the applications or gem5, this module synthesizes
instruction/branch/memory streams whose *statistical* properties match
everything Section 2 reports about the workloads:

* PHP apps: ~22 % of dynamic instructions are branches (vs ~12 % for
  SPEC CPU2006), a large static branch footprint that pressures the
  BTB, and a large fraction of *data-dependent* branches whose
  outcomes "depend solely on unpredictable data" — the stated cause of
  the 14–17 branch MPKI under a 32 KB TAGE.
* Instruction footprints that are wide (hundreds of leaf functions)
  but individually compact, so they largely fit in L1I ("they are
  compact enough that can be effectively cached in the L1").
* Data footprints that do not stress L1D heavily.

Each generated record stream is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.common.rng import DeterministicRng


@dataclass(frozen=True)
class BranchRecord:
    """One dynamic branch: its PC, outcome, and target."""

    pc: int
    taken: bool
    target: int
    is_indirect: bool = False
    is_conditional: bool = True


@dataclass(frozen=True)
class MemRecord:
    """One data memory access."""

    addr: int
    is_write: bool


@dataclass(frozen=True)
class FetchRecord:
    """One instruction-fetch cache-line address."""

    addr: int


@dataclass
class TraceProfile:
    """Statistical recipe for one workload's CPU trace.

    The per-application instances live in
    :mod:`repro.workloads.apps`; the defaults here describe a generic
    real-world PHP application.
    """

    name: str = "php-generic"
    #: dynamic instructions to synthesize per run
    instructions: int = 200_000
    #: fraction of instructions that are branches (paper: PHP 0.22, SPEC 0.12)
    branch_fraction: float = 0.22
    #: hot branch sites (VM/JIT code revisited constantly)
    hot_branch_sites: int = 32_768
    #: Zipf exponent for hot-site popularity (low = flat profile)
    hot_branch_zipf_s: float = 1.7
    #: Zipf-Mandelbrot shift flattening the head of the site popularity
    hot_branch_zipf_q: float = 160.0
    #: cold-tail branch sites (the flat leaf-function tail; touched rarely)
    cold_branch_sites: int = 400_000
    #: fraction of dynamic branches drawn uniformly from the cold tail
    cold_branch_fraction: float = 0.012
    #: taken-probability of cold-tail branches
    cold_branch_bias: float = 0.85
    #: fraction of *dynamic* hot branches that are data-dependent coin flips
    data_dependent_fraction: float = 0.07
    #: fraction of hot branch sites whose outcome correlates with recent
    #: global history (learnable by history-based predictors only);
    #: disabled by default — used by the predictor-comparison studies
    correlated_fraction: float = 0.0
    #: taken-probability band for data-dependent branches
    data_dependent_bias: tuple[float, float] = (0.35, 0.65)
    #: taken-probability for well-structured (loop/guard) branches
    structured_bias: float = 0.97
    #: fraction of branches that are indirect (dispatch, virtual calls)
    indirect_fraction: float = 0.02
    #: distinct targets per indirect branch site
    indirect_targets: int = 4
    #: (lo, hi) loop period for structured branch sites
    loop_period_range: tuple[int, int] = (12, 96)
    #: instruction working set in 64-byte lines (footprint of leaf functions)
    icache_lines: int = 2_000
    #: Zipf exponent for instruction-line popularity
    icache_zipf_s: float = 1.4
    #: data working set in 64-byte lines
    dcache_lines: int = 10_000
    #: Zipf exponent for data-line popularity
    dcache_zipf_s: float = 1.3
    #: fraction of instructions touching data memory
    mem_fraction: float = 0.35
    #: fraction of memory accesses that are writes
    write_fraction: float = 0.3
    #: fraction of data accesses that stride sequentially (prefetchable)
    stride_fraction: float = 0.45
    #: instruction-level parallelism ceiling (limits wide OoO gains)
    ilp: float = 2.9


@dataclass
class _StaticBranch:
    pc: int
    kind: str            # 'data' | 'structured' | 'indirect'
    bias: float
    targets: tuple[int, ...]
    loop_period: int = 0
    position: int = 0


class TraceGenerator:
    """Produces branch / fetch / memory record streams for a profile."""

    LINE = 64

    def __init__(self, profile: TraceProfile, rng: DeterministicRng) -> None:
        self.profile = profile
        self.rng = rng
        self._branches = self._build_static_branches()

    def _build_static_branches(self) -> list[_StaticBranch]:
        p = self.profile
        rng = self.rng.fork("static-branches")
        code_base = 0x40_0000
        branches: list[_StaticBranch] = []
        for i in range(p.hot_branch_sites):
            pc = code_base + i * 12 + rng.randint(0, 3) * 2
            roll = rng.random()
            if roll < p.correlated_fraction:
                depth = rng.randint(2, 6)
                target = 0x50_0000 + rng.randint(0, 1 << 20)
                branches.append(
                    _StaticBranch(pc, "correlated", 0.5, (target,),
                                  loop_period=depth)
                )
            elif roll < p.correlated_fraction + p.indirect_fraction:
                targets = tuple(
                    0x50_0000 + rng.randint(0, 1 << 20) for _ in range(p.indirect_targets)
                )
                branches.append(_StaticBranch(pc, "indirect", 1.0, targets))
            elif roll < p.indirect_fraction + p.data_dependent_fraction:
                lo, hi = p.data_dependent_bias
                bias = rng.uniform(lo, hi)
                target = 0x50_0000 + rng.randint(0, 1 << 20)
                branches.append(_StaticBranch(pc, "data", bias, (target,)))
            else:
                target = 0x50_0000 + rng.randint(0, 1 << 20)
                period = rng.randint(*p.loop_period_range)
                branches.append(
                    _StaticBranch(pc, "structured", p.structured_bias, (target,),
                                  loop_period=period)
                )
        return branches

    # -- streams ---------------------------------------------------------------------

    def branch_stream(self, pass_index: int = 0) -> Iterator[BranchRecord]:
        """Dynamic branches: Zipf site popularity, per-kind outcome model.

        ``pass_index`` selects an independent sample of the same
        distribution — warmup and measurement passes must not replay
        byte-identical sequences, or a long-history predictor would
        memorize even the data-dependent coin flips.
        """
        p = self.profile
        rng = self.rng.fork(f"branch-dynamics-{pass_index}")
        n_branches = int(p.instructions * p.branch_fraction)
        n_sites = len(self._branches)
        cold_base = 0x200_0000
        #: rolling global outcome history (for correlated sites)
        recent_outcomes = 0
        for _ in range(n_branches):
            if rng.random() < p.cold_branch_fraction:
                # Cold-tail site: synthesized lazily; target derived from
                # the site index so the BTB sees a stable mapping.
                idx = rng.randint(0, p.cold_branch_sites - 1)
                pc = cold_base + idx * 16
                taken = rng.random() < p.cold_branch_bias
                target = 0x300_0000 + (idx * 2654435761 % (1 << 22))
                yield BranchRecord(pc, taken, target)
                continue
            site = self._branches[rng.zipf(n_sites, p.hot_branch_zipf_s, p.hot_branch_zipf_q)]
            if site.kind == "indirect":
                target = site.targets[rng.zipf(len(site.targets), 2.0)]
                yield BranchRecord(site.pc, True, target,
                                   is_indirect=True, is_conditional=False)
            elif site.kind == "data":
                taken = rng.random() < site.bias
                recent_outcomes = (recent_outcomes << 1) | int(taken)
                yield BranchRecord(site.pc, taken, site.targets[0])
            elif site.kind == "correlated":
                # Outcome = parity of the last ``depth`` global outcomes:
                # invisible to bimodal, learnable with global history.
                depth = site.loop_period
                window = recent_outcomes & ((1 << depth) - 1)
                taken = bin(window).count("1") % 2 == 0
                recent_outcomes = (recent_outcomes << 1) | int(taken)
                yield BranchRecord(site.pc, taken, site.targets[0])
            else:
                # Loop-like: taken (period-1) times, then a not-taken exit.
                site.position = (site.position + 1) % site.loop_period
                taken = site.position != 0
                recent_outcomes = (recent_outcomes << 1) | int(taken)
                yield BranchRecord(site.pc, taken, site.targets[0])

    def fetch_stream(self, pass_index: int = 0) -> Iterator[FetchRecord]:
        """Instruction-line fetches with sequential-run locality."""
        p = self.profile
        rng = self.rng.fork(f"fetch-{pass_index}")
        code_base = 0x40_0000
        fetches = p.instructions // 4  # ~4 instructions per 16B fetch group
        emitted = 0
        while emitted < fetches:
            line = rng.zipf(p.icache_lines, p.icache_zipf_s)
            run = rng.randint(2, 10)  # straight-line run before a jump
            for step in range(run):
                if emitted >= fetches:
                    break
                addr = code_base + ((line + step) % p.icache_lines) * self.LINE
                yield FetchRecord(addr)
                emitted += 1

    def mem_stream(self, pass_index: int = 0) -> Iterator[MemRecord]:
        """Data accesses: Zipf-popular lines plus strided runs."""
        p = self.profile
        rng = self.rng.fork(f"mem-{pass_index}")
        data_base = 0x1000_0000
        accesses = int(p.instructions * p.mem_fraction)
        emitted = 0
        while emitted < accesses:
            if rng.random() < p.stride_fraction:
                start = rng.zipf(p.dcache_lines, p.dcache_zipf_s)
                run = rng.randint(4, 16)
                for step in range(run):
                    if emitted >= accesses:
                        break
                    addr = data_base + ((start + step) % p.dcache_lines) * self.LINE
                    yield MemRecord(addr, rng.random() < p.write_fraction)
                    emitted += 1
            else:
                line = rng.zipf(p.dcache_lines, p.dcache_zipf_s)
                addr = data_base + line * self.LINE + rng.randint(0, 3) * 16
                yield MemRecord(addr, rng.random() < p.write_fraction)
                emitted += 1


#: Ready-made profile matching the paper's SPEC CPU2006 comparison points
#: (12 % branches, few data-dependent sites, hot loops → ≈2.9 MPKI).
SPEC_LIKE_PROFILE = TraceProfile(
    name="spec-cpu-like",
    branch_fraction=0.12,
    hot_branch_sites=3_000,
    hot_branch_zipf_s=1.2,
    cold_branch_sites=20_000,
    cold_branch_fraction=0.002,
    data_dependent_fraction=0.025,
    data_dependent_bias=(0.3, 0.7),
    structured_bias=0.985,
    indirect_fraction=0.01,
    loop_period_range=(32, 256),
    icache_lines=700,
    icache_zipf_s=1.2,
    dcache_lines=40_000,
    ilp=2.2,
)
