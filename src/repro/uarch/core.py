"""Core timing models and the front-to-back characterization pipeline.

Reproduces the paper's Figure 2 methodology: run a workload's
synthetic trace through the branch predictor, BTB, and cache hierarchy
(:mod:`repro.uarch`), then convert the event counts into execution
time with an analytic in-order / out-of-order model.

The analytic model captures the qualitative claims of Section 2:

* in-order → OoO is a large win (stall exposure and issue efficiency),
* 2-wide → 4-wide OoO is "fairly significant" (ILP exists),
* 4-wide → 8-wide OoO is "< 3%" (the workload ILP ceiling binds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.rng import DeterministicRng
from repro.uarch.btb import Btb
from repro.uarch.caches import CacheHierarchy, HierarchyConfig
from repro.uarch.tage import Tage, TageConfig
from repro.uarch.trace import TraceGenerator, TraceProfile


@dataclass
class CoreConfig:
    """Pipeline shape and penalty constants for one core model."""

    name: str
    width: int
    out_of_order: bool
    mispredict_penalty: int = 14
    btb_miss_penalty: int = 8
    #: issue efficiency of an in-order pipeline relative to dataflow limit
    inorder_efficiency: float = 0.62
    #: fraction of exposed miss latency an OoO window hides
    ooo_latency_hiding: float = 0.65

    @staticmethod
    def inorder_2() -> "CoreConfig":
        return CoreConfig("inorder-2", width=2, out_of_order=False)

    @staticmethod
    def ooo(width: int) -> "CoreConfig":
        return CoreConfig(f"ooo-{width}", width=width, out_of_order=True)

    @staticmethod
    def xeon_like() -> "CoreConfig":
        """The paper's evaluation core: 4-wide OoO Xeon-like."""
        return CoreConfig.ooo(4)


@dataclass
class TraceCounts:
    """Event totals produced by one characterization run."""

    instructions: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    btb_misses: int = 0
    fetch_cycles_lost: int = 0
    mem_stall_cycles: int = 0
    l1i_mpki: float = 0.0
    l1d_mpki: float = 0.0
    l2_mpki: float = 0.0
    branch_mpki: float = 0.0
    btb_hit_rate: float = 0.0


def effective_issue_width(config: CoreConfig, ilp: float) -> float:
    """Sustainable µops/cycle for a workload with dataflow limit ``ilp``.

    OoO cores achieve ``min(width, ilp)`` with a small residual gain
    past the ILP ceiling (better scheduling slack); in-order cores lose
    a constant issue-efficiency factor to stalls the scheduler cannot
    reorder around.
    """
    if config.out_of_order:
        base = min(config.width, ilp)
        residual = 0.02 * max(0.0, config.width - ilp)
        return base + residual
    return min(config.width, ilp) * config.inorder_efficiency


def estimate_cycles(config: CoreConfig, counts: TraceCounts, ilp: float) -> float:
    """Analytic execution-time estimate from event counts."""
    issue = effective_issue_width(config, ilp)
    base = counts.instructions / issue
    branch_cost = counts.branch_mispredicts * config.mispredict_penalty
    btb_cost = counts.btb_misses * config.btb_miss_penalty
    mem = counts.mem_stall_cycles
    if config.out_of_order:
        mem = mem * (1.0 - config.ooo_latency_hiding)
        btb_cost *= 0.75  # decoupled front end absorbs part of the bubble
    return base + branch_cost + btb_cost + mem


class CharacterizationRun:
    """One full Section-2-style characterization of a trace profile.

    Drives the synthesized branch/fetch/memory streams through TAGE,
    the BTB, and the cache hierarchy, then summarizes the event counts
    and converts them to cycles for each core model of interest.
    """

    def __init__(
        self,
        profile: TraceProfile,
        rng: DeterministicRng,
        btb_entries: int = 4096,
        hierarchy: HierarchyConfig | None = None,
        tage_config: TageConfig | None = None,
    ) -> None:
        self.profile = profile
        self.rng = rng
        self.btb = Btb(entries=btb_entries)
        self.tage = Tage(tage_config, rng.fork("tage"))
        self.hierarchy = CacheHierarchy(hierarchy or HierarchyConfig.xeon_like())

    def run(self, warmup_passes: int = 1) -> TraceCounts:
        """Process the whole trace; returns aggregated counts.

        ``warmup_passes`` replays of the identical trace train the
        predictor, BTB, and caches before the measured pass, mirroring
        the paper's methodology of issuing 300 warmup requests before
        the measurement window.  Statistics reflect only the measured
        pass, i.e. steady-state rates.
        """
        profile = self.profile
        gen = TraceGenerator(profile, self.rng.fork("trace"))
        counts = TraceCounts(instructions=profile.instructions)

        for pass_index in range(warmup_passes):
            for branch in gen.branch_stream(pass_index):
                if branch.is_conditional:
                    self.tage.train(branch.pc, branch.taken)
                self.btb.lookup(branch)
            for fetch in gen.fetch_stream(pass_index):
                self.hierarchy.fetch(fetch.addr)
            for mem in gen.mem_stream(pass_index):
                self.hierarchy.load_store(mem.addr, mem.is_write)
        measured = warmup_passes  # fresh sample for the measured pass
        # Each stream draws from its own pass-labeled rng fork, so the
        # streams can be consumed lazily (no list materialization)
        # without perturbing any random sequence.
        self.tage.stats.reset()
        self.btb.stats.reset()
        for cache in (self.hierarchy.l1i, self.hierarchy.l1d, self.hierarchy.l2):
            cache.stats.reset()

        for branch in gen.branch_stream(measured):
            counts.branches += 1
            if branch.is_conditional:
                correct = self.tage.train(branch.pc, branch.taken)
                if not correct:
                    counts.branch_mispredicts += 1
            if not self.btb.lookup(branch):
                counts.btb_misses += 1

        l1i_lat = self.hierarchy.l1i.config.latency
        for fetch in gen.fetch_stream(measured):
            latency = self.hierarchy.fetch(fetch.addr)
            counts.fetch_cycles_lost += max(0, latency - l1i_lat)

        l1d_lat = self.hierarchy.l1d.config.latency
        for mem in gen.mem_stream(measured):
            latency = self.hierarchy.load_store(mem.addr, mem.is_write)
            counts.mem_stall_cycles += max(0, latency - l1d_lat)
        counts.mem_stall_cycles += counts.fetch_cycles_lost

        n = profile.instructions
        counts.l1i_mpki = self.hierarchy.l1i.mpki(n)
        counts.l1d_mpki = self.hierarchy.l1d.mpki(n)
        counts.l2_mpki = self.hierarchy.l2.mpki(n)
        counts.branch_mpki = 1000.0 * counts.branch_mispredicts / n
        counts.btb_hit_rate = self.btb.hit_rate()
        return counts


def sweep_cores(
    profile: TraceProfile,
    rng: DeterministicRng,
    configs: list[CoreConfig],
) -> dict[str, float]:
    """Figure 2(c): execution time per core model, same trace counts."""
    run = CharacterizationRun(profile, rng)
    counts = run.run()
    return {
        cfg.name: estimate_cycles(cfg, counts, profile.ilp) for cfg in configs
    }


def sweep_btb_and_icache(
    profile: TraceProfile,
    rng: DeterministicRng,
    btb_sizes: list[int],
    icache_kb_sizes: list[int],
    core: CoreConfig | None = None,
) -> dict[tuple[int, int], float]:
    """Figure 2(a): execution time over (BTB entries × I-cache KB).

    Each configuration reruns the identical trace (same seed) through
    fresh structures, as gem5 checkpoint sweeps would.
    """
    core = core or CoreConfig.xeon_like()
    results: dict[tuple[int, int], float] = {}
    for btb_entries in btb_sizes:
        for icache_kb in icache_kb_sizes:
            hierarchy = HierarchyConfig.xeon_like(l1i_kb=icache_kb)
            run = CharacterizationRun(
                profile,
                DeterministicRng(rng.seed),
                btb_entries=btb_entries,
                hierarchy=hierarchy,
            )
            counts = run.run()
            results[(btb_entries, icache_kb)] = estimate_cycles(
                core, counts, profile.ilp
            )
    return results
