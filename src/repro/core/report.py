"""Plain-text rendering of experiment results in the paper's layout."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.experiment import AppResult

if TYPE_CHECKING:
    from repro.conformance.fuzzer import ConformanceReport
    from repro.fleet.overload import OverloadReport
    from repro.fleet.report import FleetReport
    from repro.resilience.report import ResilienceReport


def format_table(
    headers: list[str], rows: list[list[str]], title: str = ""
) -> str:
    """Fixed-width table with a rule under the header."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def pct(x: float, digits: int = 2) -> str:
    return f"{100 * x:.{digits}f}%"


def figure14_report(results: list[AppResult]) -> str:
    """Execution time normalized to unmodified HHVM (Figure 14)."""
    rows = []
    for r in results:
        rows.append([
            r.app,
            "100.00%",
            pct(r.time_with_priors),
            pct(r.time_with_accelerators),
            pct(r.accel_benefit_total),
        ])
    n = len(results)
    rows.append([
        "average",
        "100.00%",
        pct(sum(r.time_with_priors for r in results) / n),
        pct(sum(r.time_with_accelerators for r in results) / n),
        pct(sum(r.accel_benefit_total for r in results) / n),
    ])
    return format_table(
        ["app", "unmodified", "w/ prior opts", "w/ accelerators",
         "accel benefit (vs opt)"],
        rows,
        title="Figure 14: execution time normalized to unmodified HHVM",
    )


def figure15_report(results: list[AppResult]) -> str:
    """Per-accelerator benefit breakdown (Figure 15)."""
    keys = ["heap", "hash", "string", "regex"]
    rows = []
    for r in results:
        rows.append([r.app] + [pct(r.benefits[k]) for k in keys])
    n = len(results)
    rows.append(
        ["average"]
        + [pct(sum(r.benefits[k] for r in results) / n) for k in keys]
    )
    return format_table(
        ["app", "heap mgr", "hash table", "string accel", "regex accel"],
        rows,
        title="Figure 15: per-accelerator execution-time benefit "
              "(fraction of optimized time)",
    )


def resilience_report(reports: list["ResilienceReport"]) -> str:
    """Degraded-mode summary: availability/goodput/tail per scenario.

    Goodput is normalized to the matching policy's run under the
    first scenario in the list (conventionally the fault-free one), so
    the table answers "how much of my healthy capacity survives this
    fault scenario under this policy".
    """
    baseline_by_policy: dict[str, "ResilienceReport"] = {}
    first_scenario = reports[0].scenario if reports else ""
    for r in reports:
        if r.scenario == first_scenario and r.policy not in baseline_by_policy:
            baseline_by_policy[r.policy] = r
    rows = []
    for r in reports:
        baseline = baseline_by_policy.get(r.policy, r)
        rows.append([
            r.scenario,
            r.policy,
            pct(r.availability),
            pct(r.goodput_vs(baseline)),
            f"{r.retry_amplification:.2f}x",
            str(r.shed),
            pct(r.software_path_share),
            str(r.breaker_trips),
            f"{r.p99_latency:,.0f}",
            f"{r.p999_latency:,.0f}",
        ])
    return format_table(
        ["scenario", "policy", "avail", "goodput",
         "retry amp", "shed", "sw path", "trips", "p99 (cyc)",
         "p999 (cyc)"],
        rows,
        title="Resilience: availability and goodput under fault "
              "injection (goodput vs same-policy fault-free run)",
    )


def fleet_report(reports: list["FleetReport"]) -> str:
    """Fleet summary: one row per (topology, balancer) run.

    ``imbalance`` is the coefficient of variation of per-node
    utilization — the utilization slack the paper's TCO argument says
    a fleet cannot afford to waste; ``hit`` is the object-cache hit
    ratio over measured lookups (a dash with no cache tier).
    """
    rows = []
    for r in reports:
        rows.append([
            r.fleet,
            r.balancer,
            str(r.cache_shards) if r.cache_shards else "-",
            pct(r.cache_hit_ratio) if r.cache_shards else "-",
            pct(r.availability),
            str(r.shed),
            f"{r.goodput_per_kcycle:.3f}",
            pct(r.mean_utilization),
            f"{r.utilization_imbalance:.3f}",
            f"{r.latency.p50:,.0f}",
            f"{r.latency.p99:,.0f}",
            f"{r.latency.p999:,.0f}",
        ])
    return format_table(
        ["fleet", "balancer", "shards", "hit", "avail", "shed",
         "goodput/kcyc", "util", "imbalance", "p50 (cyc)", "p99 (cyc)",
         "p999 (cyc)"],
        rows,
        title="Fleet: goodput, balance, and cache shielding per "
              "(topology, balancer)",
    )


def overload_report(reports: list["OverloadReport"]) -> str:
    """Overload summary: one row per scenario, verdict last.

    ``goodput`` is completions inside the client deadline over first
    attempts; ``amp`` is attempts per first attempt (the retry-storm
    load factor); ``recovery`` is how long after the trigger cleared
    goodput sustained at the recovery SLO (``never`` is the metastable
    signature: the failure outlived its cause).
    """
    rows = []
    for r in reports:
        recovery = (
            f"{r.recovery_services:.0f} svc"
            if r.recovery_services is not None else "never"
        )
        rows.append([
            r.scenario,
            f"{r.nodes}x{r.workers // max(r.nodes, 1)}",
            str(r.arrivals),
            pct(r.goodput_ratio),
            f"{r.amplification:.2f}x",
            str(r.shed + r.shed_expired),
            str(r.timeouts),
            str(r.zombies),
            str(r.stale_served + r.coalesced),
            pct(r.pre_trigger_goodput),
            recovery,
            "METASTABLE" if r.metastable else "recovered",
        ])
    return format_table(
        ["scenario", "fleet", "offered", "goodput", "amp", "shed",
         "timeout", "zombie", "stampede-saves", "pre-trigger",
         "recovery", "verdict"],
        rows,
        title="Overload: goodput collapse and recovery per scenario "
              "(flash crowd + retry storm)",
    )


def overload_timeline(report: "OverloadReport") -> str:
    """Goodput-fraction timeline, one glyph per bucket.

    Height encodes goodput ÷ first arrivals in that bucket (``#`` ≈
    healthy, ``_`` ≈ collapsed, ``.`` = idle bucket); ``[`` and ``]``
    bracket the flash-crowd window.  A metastable run reads as a flat
    ``_`` stretch long after the closing bracket.
    """
    glyphs = "_,:-=+*#"
    cells = []
    bucket = report.bucket_services
    for i, f in enumerate(report.goodput_fractions()):
        start, end = i * bucket, (i + 1) * bucket
        if f is None:
            cell = "."
        else:
            level = min(int(f * len(glyphs)), len(glyphs) - 1)
            cell = glyphs[level]
        if start <= report.flash_start_services < end:
            cell = "["
        elif start < report.flash_end_services <= end:
            cell = "]"
        cells.append(cell)
    return (
        f"{report.scenario:<18} |{''.join(cells)}|  "
        f"({bucket:.0f} svc/bucket)"
    )


def conformance_report(report: "ConformanceReport") -> str:
    """Differential-oracle + invariant summary for ``repro conform``.

    One row per fuzzed domain (cases run, failures, smallest shrunk
    repro) followed by one row per simulator invariant.  The rendering
    is a pure function of the report, so same-seed runs print
    byte-identical output — that determinism is itself asserted by
    ``tests/test_conformance.py``.
    """
    rows = []
    for d in report.domains:
        repro_hint = "-"
        if d.shrunk:
            repro_hint = _ellipsize(repr(d.shrunk[0]["shrunk"]), 48)
        rows.append([
            f"oracle:{d.domain}",
            str(d.cases),
            "OK" if d.ok else f"FAIL ({d.failures})",
            repro_hint,
        ])
    for row in report.invariants:
        rows.append([
            f"invariant:{row['name']}",
            "1",
            "OK" if row["ok"] else "FAIL",
            _ellipsize(row["detail"], 48),
        ])
    mode = "smoke" if report.smoke else "full"
    return format_table(
        ["check", "cases", "status", "detail / shrunk repro"], rows,
        title=f"Conformance ({mode}, seed {report.seed}): differential "
              f"oracles + simulator invariants",
    )


def _ellipsize(text: str, limit: int) -> str:
    text = " ".join(text.split())
    return text if len(text) <= limit else text[: limit - 1] + "…"


def perf_observability_report() -> str:
    """Counters from the experiment-cache / pool / trace-cache layer.

    One row per counter across the three performance subsystems, so a
    sweep run can show where its work went: cells served from the
    experiment cache vs recomputed, tasks run inline vs shipped to a
    process pool, and trace streams shared vs regenerated.
    """
    from repro.core.expcache import EXPERIMENT_CACHE
    from repro.core.parallel import PARALLEL_STATS
    from repro.workloads.loadgen import TRACE_CACHE

    rows = []
    for registry in (EXPERIMENT_CACHE.stats, PARALLEL_STATS,
                     TRACE_CACHE.stats):
        for name, value in registry:
            rows.append([name, str(value)])
    if not rows:
        rows.append(["(no activity)", "-"])
    return format_table(
        ["counter", "value"], rows,
        title="Performance observability: caches and pool activity",
    )


def energy_report(results: list[AppResult]) -> str:
    """Section 5.2 energy savings."""
    rows = [[r.app, pct(r.energy_saving)] for r in results]
    rows.append([
        "average",
        pct(sum(r.energy_saving for r in results) / len(results)),
    ])
    return format_table(
        ["app", "energy saving"], rows,
        title="Section 5.2: CPU energy savings vs optimized baseline",
    )


def serve_report(payload: dict) -> str:
    """Live serving-path summary (``python -m repro serve``).

    The payload is the schema-validated ``repro-serve/1`` document
    from :func:`repro.serve.run.run_serve`; the table itself lives
    next to the schema in :mod:`repro.serve.report` (imported lazily —
    the serve stack pulls in asyncio machinery the figure commands
    never need).
    """
    from repro.serve.report import format_serve_report

    return format_serve_report(payload)


def calibrate_report(payload: dict) -> str:
    """Digital-twin calibration summary (``python -m repro calibrate``).

    The payload is the schema-validated ``repro-calibrate/1`` document
    from :func:`repro.calibrate.run.run_calibrate`; the table renderer
    lives next to the schema in :mod:`repro.calibrate.report`
    (imported lazily, like the serve stack).
    """
    from repro.calibrate.report import format_calibration_report

    return format_calibration_report(payload)
