"""Plain-text rendering of experiment results in the paper's layout."""

from __future__ import annotations

from repro.core.experiment import AppResult


def format_table(
    headers: list[str], rows: list[list[str]], title: str = ""
) -> str:
    """Fixed-width table with a rule under the header."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def pct(x: float, digits: int = 2) -> str:
    return f"{100 * x:.{digits}f}%"


def figure14_report(results: list[AppResult]) -> str:
    """Execution time normalized to unmodified HHVM (Figure 14)."""
    rows = []
    for r in results:
        rows.append([
            r.app,
            "100.00%",
            pct(r.time_with_priors),
            pct(r.time_with_accelerators),
            pct(r.accel_benefit_total),
        ])
    n = len(results)
    rows.append([
        "average",
        "100.00%",
        pct(sum(r.time_with_priors for r in results) / n),
        pct(sum(r.time_with_accelerators for r in results) / n),
        pct(sum(r.accel_benefit_total for r in results) / n),
    ])
    return format_table(
        ["app", "unmodified", "w/ prior opts", "w/ accelerators",
         "accel benefit (vs opt)"],
        rows,
        title="Figure 14: execution time normalized to unmodified HHVM",
    )


def figure15_report(results: list[AppResult]) -> str:
    """Per-accelerator benefit breakdown (Figure 15)."""
    keys = ["heap", "hash", "string", "regex"]
    rows = []
    for r in results:
        rows.append([r.app] + [pct(r.benefits[k]) for k in keys])
    n = len(results)
    rows.append(
        ["average"]
        + [pct(sum(r.benefits[k] for r in results) / n) for k in keys]
    )
    return format_table(
        ["app", "heap mgr", "hash table", "string accel", "regex accel"],
        rows,
        title="Figure 15: per-accelerator execution-time benefit "
              "(fraction of optimized time)",
    )


def energy_report(results: list[AppResult]) -> str:
    """Section 5.2 energy savings."""
    rows = [[r.app, pct(r.energy_saving)] for r in results]
    rows.append([
        "average",
        pct(sum(r.energy_saving for r in results) / len(results)),
    ])
    return format_table(
        ["app", "energy saving"], rows,
        title="Section 5.2: CPU energy savings vs optimized baseline",
    )
