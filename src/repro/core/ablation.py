"""Ablation studies of the accelerator design choices.

The paper justifies several design decisions by argument; these
ablations quantify them in the model:

* **GET-only hash table** — the memcached prior work [55] serves only
  GETs; Section 4.2 argues PHP's 15–25 % SET share makes SET support
  essential ("a hash table deployed for such applications should
  respond to both GET and SET requests").
* **No pointer prefetcher** — Section 4.3's prefetcher hides software
  refill latency; without it every empty-list malloc stalls.
* **Single-byte string datapath** — the prior string accelerator [68]
  "processes a single character every cycle"; Section 4.4 processes
  64 bytes per 3 cycles.
* **No content sifting** — shadow regexps scan everything.
* **No content reuse** — every anchored scan traverses from state 0.
* **Narrow probe (1 vs 4)** — the parallel probe bounds lookup work.

Each ablation reruns the affected category simulation with one knob
turned off and reports the efficiency delta against the full design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accel.hash_table import HashTableConfig
from repro.accel.heap_manager import HeapManagerConfig
from repro.accel.string_accel import StringAccelConfig
from repro.common.rng import DEFAULT_SEED
from repro.core.costs import DEFAULT_COSTS
from repro.core.execute import (
    HashSimulator,
    HeapSimulator,
    RegexSimulator,
    StringSimulator,
)
from repro.isa.dispatch import AcceleratorComplex, ComplexConfig
from repro.workloads.apps import AppWorkload, wordpress
from repro.workloads.loadgen import TRACE_CACHE


@dataclass
class AblationResult:
    """One design variant's outcome on one category."""

    name: str
    category: str
    efficiency: float            # 1 - hw/sw cycles
    baseline_efficiency: float   # the full design's efficiency
    detail: dict[str, float] = field(default_factory=dict)

    @property
    def efficiency_loss(self) -> float:
        """Benefit given up by removing the feature (fraction)."""
        return self.baseline_efficiency - self.efficiency


def _run_hash(
    app: AppWorkload, config: HashTableConfig, requests: int, seed: int
) -> tuple[float, dict[str, float]]:
    complex_ = AcceleratorComplex(config=ComplexConfig(hash_table=config))
    # Both modes consumed identical same-seed traces before; one shared
    # stream preserves that (map_base_address is pure, so the hash
    # generator is shareable too).
    stream = TRACE_CACHE.stream(app, seed, warmup_requests=0)
    sw = HashSimulator("software", stream.hash_generator, DEFAULT_COSTS)
    hw = HashSimulator(
        "accelerated", stream.hash_generator, DEFAULT_COSTS, complex_
    )
    for trace in stream.traces(requests):
        sw.execute(trace.hash_ops)
        hw.execute(trace.hash_ops)
    eff = hw.finish().efficiency_vs(sw.finish())
    return eff, {"hit_rate": complex_.hash_table.hit_rate()}


def _run_heap(
    app: AppWorkload, config: HeapManagerConfig, requests: int, seed: int
) -> tuple[float, dict[str, float]]:
    complex_ = AcceleratorComplex(config=ComplexConfig(heap_manager=config))
    stream = TRACE_CACHE.stream(app, seed, warmup_requests=0)
    sw = HeapSimulator("software", DEFAULT_COSTS)
    hw = HeapSimulator("accelerated", DEFAULT_COSTS, complex_)
    for trace in stream.traces(requests):
        sw.execute(trace.alloc_ops)
        hw.execute(trace.alloc_ops)
    eff = hw.finish().efficiency_vs(sw.finish())
    return eff, {"hit_rate": complex_.heap_manager.hit_rate()}


def _run_string(
    app: AppWorkload, config: StringAccelConfig, requests: int, seed: int
) -> tuple[float, dict[str, float]]:
    complex_ = AcceleratorComplex(config=ComplexConfig(string=config))
    stream = TRACE_CACHE.stream(app, seed, warmup_requests=0)
    sw = StringSimulator("software", DEFAULT_COSTS)
    hw = StringSimulator("accelerated", DEFAULT_COSTS, complex_)
    for trace in stream.traces(requests):
        sw.execute(trace.str_ops)
        hw.execute(trace.str_ops)
    eff = hw.finish().efficiency_vs(sw.finish())
    return eff, {}


def _run_regex(
    app: AppWorkload, requests: int, seed: int,
    sifting: bool, reuse: bool,
) -> tuple[float, dict[str, float]]:
    complex_ = AcceleratorComplex()
    stream = TRACE_CACHE.stream(app, seed, warmup_requests=0)
    sw = RegexSimulator("software", DEFAULT_COSTS)
    hw = RegexSimulator("accelerated", DEFAULT_COSTS, complex_)
    for trace in stream.traces(requests):
        sw.execute_sift(trace.sift_tasks)
        sw.execute_reuse(trace.reuse_tasks)
        if sifting:
            hw.execute_sift(trace.sift_tasks)
        else:
            hw.execute_sift_unsifted(trace.sift_tasks)
        if reuse:
            hw.execute_reuse(trace.reuse_tasks)
        else:
            hw.execute_reuse_unmemoized(trace.reuse_tasks)
    eff = hw.finish().efficiency_vs(sw.finish())
    return eff, {"skip_fraction": hw.skip_fraction()}


def run_ablations(
    app: AppWorkload | None = None,
    requests: int = 4,
    seed: int = DEFAULT_SEED,
) -> list[AblationResult]:
    """Run the full ablation matrix; returns one result per variant."""
    app = app or wordpress()
    results: list[AblationResult] = []

    # -- hash table -----------------------------------------------------------
    base_eff, base_detail = _run_hash(app, HashTableConfig(), requests, seed)
    for name, config in (
        ("hash: GET-only (memcached-style [55])",
         HashTableConfig(support_sets=False)),
        ("hash: single-entry probe",
         HashTableConfig(probe_width=1)),
        ("hash: 64 entries",
         HashTableConfig(entries=64)),
    ):
        eff, detail = _run_hash(app, config, requests, seed)
        results.append(AblationResult(name, "hash", eff, base_eff, detail))
    results.insert(0, AblationResult(
        "hash: full design", "hash", base_eff, base_eff, base_detail
    ))

    # -- heap manager -----------------------------------------------------------
    base_eff, base_detail = _run_heap(app, HeapManagerConfig(), requests, seed)
    results.append(AblationResult(
        "heap: full design", "heap", base_eff, base_eff, base_detail
    ))
    for name, config in (
        ("heap: no prefetcher", HeapManagerConfig(prefetch_enabled=False)),
        ("heap: 4-entry free lists", HeapManagerConfig(entries_per_class=4)),
    ):
        eff, detail = _run_heap(app, config, requests, seed)
        results.append(AblationResult(name, "heap", eff, base_eff, detail))

    # -- string accelerator --------------------------------------------------------
    base_eff, _ = _run_string(app, StringAccelConfig(), requests, seed)
    results.append(AblationResult(
        "string: 64 B / 3 cycles", "string", base_eff, base_eff
    ))
    eff, _ = _run_string(
        app, StringAccelConfig(block_bytes=1, cycles_per_block=1),
        requests, seed,
    )
    results.append(AblationResult(
        "string: 1 B/cycle (prior work [68])", "string", eff, base_eff
    ))

    # -- regexp accelerator -----------------------------------------------------------
    base_eff, base_detail = _run_regex(app, requests, seed, True, True)
    results.append(AblationResult(
        "regex: sifting + reuse", "regex", base_eff, base_eff, base_detail
    ))
    for name, sifting, reuse in (
        ("regex: no content sifting", False, True),
        ("regex: no content reuse", True, False),
        ("regex: neither technique", False, False),
    ):
        eff, detail = _run_regex(app, requests, seed, sifting, reuse)
        results.append(AblationResult(name, "regex", eff, base_eff, detail))

    return results
