"""Request throughput and datacenter-cost framing.

The paper's introduction motivates everything in fleet terms: "since
these PHP applications run on live datacenters hosting millions of
such web applications, even small improvements in performance or
utilization will translate into immense cost savings."  This module
converts the Figure 14 execution-time ratios into the quantities an
operator reasons about: requests/second per core, cores needed for a
target load, and the serving-capacity gain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import DEFAULT_SEED
from repro.core.experiment import AppResult, full_evaluation

#: Nominal cycles one request costs on unmodified HHVM (sets the
#: absolute scale only; all comparisons are ratios).
BASELINE_CYCLES_PER_REQUEST = 25_000_000
#: Evaluation clock (the paper's synthesis point).
CLOCK_HZ = 2_000_000_000


@dataclass
class ThroughputResult:
    """Serving capacity of one app under the three configurations."""

    app: str
    baseline_rps: float
    optimized_rps: float
    accelerated_rps: float

    @property
    def capacity_gain(self) -> float:
        """Extra load one core absorbs with the accelerators (vs base)."""
        return self.accelerated_rps / self.baseline_rps - 1.0

    def cores_for(self, target_rps: float, config: str = "accelerated") -> int:
        """Cores needed to serve ``target_rps`` (ceil)."""
        per_core = {
            "baseline": self.baseline_rps,
            "optimized": self.optimized_rps,
            "accelerated": self.accelerated_rps,
        }[config]
        import math
        return max(1, math.ceil(target_rps / per_core))


def throughput_analysis(
    seed: int = DEFAULT_SEED,
    requests: int | None = None,
    results: list[AppResult] | None = None,
) -> list[ThroughputResult]:
    """Turn Figure 14 ratios into per-core requests/second."""
    if results is None:
        results = full_evaluation(seed=seed, requests=requests)
    out: list[ThroughputResult] = []
    base_rps = CLOCK_HZ / BASELINE_CYCLES_PER_REQUEST
    for r in results:
        out.append(ThroughputResult(
            app=r.app,
            baseline_rps=base_rps,
            optimized_rps=base_rps / r.time_with_priors,
            accelerated_rps=base_rps / r.time_with_accelerators,
        ))
    return out


def fleet_summary(
    analysis: list[ThroughputResult],
    fleet_rps: float = 1_000_000.0,
) -> dict[str, float]:
    """Fleet sizing for a nominal 1M-rps service mix (equal thirds)."""
    import math

    def cores(config: str) -> int:
        per_app_rps = fleet_rps / len(analysis)
        return sum(t.cores_for(per_app_rps, config) for t in analysis)

    baseline = cores("baseline")
    optimized = cores("optimized")
    accelerated = cores("accelerated")
    return {
        "baseline_cores": float(baseline),
        "optimized_cores": float(optimized),
        "accelerated_cores": float(accelerated),
        "cores_saved_vs_baseline": float(baseline - accelerated),
        "fleet_reduction": 1.0 - accelerated / baseline,
    }
