"""Cost model: µops and cycles for software and hardware paths.

All constants trace to the paper's Section 5.2 measurements:

* "Memory allocation requests (malloc and free) require on average 69
  and 37 x86 micro-ops, respectively, in software."
* "Hash map walks in software require on average 90.66 x86 micro-ops."
* The evaluation core is a 4-wide OoO Xeon-like machine; the workload
  ILP ceiling (~2.9, Section 2's Figure 2c analysis) bounds sustained
  µops/cycle.

The hash-walk cost is not a flat constant here: it is parameterized by
the *actual* probe and key-compare counts the software
:class:`~repro.runtime.phparray.PhpArray` records, with coefficients
calibrated so the workload-average lands at the paper's 90.66 (a test
asserts this).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.regex.engine import CALL_OVERHEAD_UOPS as REGEX_CALL_UOPS
from repro.regex.engine import UOPS_PER_CHAR as REGEX_UOPS_PER_CHAR


@dataclass(frozen=True)
class CostModel:
    """Conversion constants between events, µops, and cycles."""

    #: sustained µops/cycle on the 4-wide OoO evaluation core
    effective_ipc: float = 2.9

    # -- software hash map (calibrated to 90.66 µops/walk average) ------------
    hash_walk_base_uops: float = 38.6
    hash_walk_per_probe_uops: float = 22.0
    hash_walk_per_key_byte_uops: float = 1.15
    hash_insert_extra_uops: float = 26.0
    hash_foreach_per_entry_uops: float = 9.0

    # -- software heap manager (paper's measured averages) ---------------------
    malloc_uops: float = 69.0
    free_uops: float = 37.0
    kernel_chunk_uops: float = 450.0

    # -- software regexp engine -------------------------------------------------
    regex_uops_per_char: float = float(REGEX_UOPS_PER_CHAR)
    regex_call_uops: float = float(REGEX_CALL_UOPS)

    # -- hardware-side incidentals ------------------------------------------------
    #: µops for issuing one accelerator instruction
    accel_issue_uops: float = 1.0
    #: µops for the zero-flag branch into a software handler
    fallback_branch_uops: float = 2.0
    #: µops for the hmfree overflow handler's single store
    overflow_store_uops: float = 2.0

    # -- degraded-mode / resilience incidentals -----------------------------------
    #: µops to detect a failed accelerated attempt (watchdog expiry,
    #: result checksum, error-path bookkeeping) at request completion
    fault_detect_uops: float = 600.0
    #: µops the client/server pair spends re-issuing a failed request
    #: (connection re-setup, request re-parse, retry bookkeeping)
    retry_dispatch_uops: float = 1_500.0

    def uops_to_cycles(self, uops: float) -> float:
        """Core execution time of a µop stream at the sustained IPC."""
        return uops / self.effective_ipc

    def fault_detect_cycles(self) -> float:
        """Cycles a doomed attempt spends discovering it failed."""
        return self.uops_to_cycles(self.fault_detect_uops)

    def retry_dispatch_cycles(self) -> float:
        """Cycles of fixed overhead added to every retry re-issue."""
        return self.uops_to_cycles(self.retry_dispatch_uops)

    def hash_walk_uops(self, probes: int, key_bytes: int, ops: int) -> float:
        """Software hash-walk µops from actual traversal counters."""
        return (
            ops * self.hash_walk_base_uops
            + probes * self.hash_walk_per_probe_uops
            + key_bytes * self.hash_walk_per_key_byte_uops
        )


#: Default model used by every experiment.
DEFAULT_COSTS = CostModel()
