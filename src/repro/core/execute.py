"""Category simulators: one operation stream, two execution paths.

Each simulator executes a workload's operation stream twice — once on
the software substrate (the HHVM-like baseline) and once through the
accelerators with zero-flag fallbacks — and accounts µops, cycles, and
accelerator energy events for both.  The per-category *efficiency*
(1 − hw/sw cycles) these runs produce is what turns the paper's
Figure 5 time breakdown into its Figure 14/15 results.

Correctness is first-class: both paths compute real values over real
data structures, and checksums (plus dedicated integration tests)
assert the accelerated execution is semantically identical to the
software one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.costs import DEFAULT_COSTS, CostModel

_FNV64_OFFSET = 0xCBF29CE484222325
_FNV64_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def stable_hash(value: object) -> int:
    """Process-stable 64-bit FNV-1a hash of a value's canonical repr.

    Builtin ``hash()`` is PYTHONHASHSEED-salted for str/bytes, so
    checksums built on it differ between the pool workers of a
    ``map_cells`` fan-out and can never be compared across processes
    or pinned in a corpus.  ``repr`` is canonical for everything the
    simulators mix (str/int/tuple), making this hash identical on
    every platform and in every process.
    """
    acc = _FNV64_OFFSET
    for byte in repr(value).encode("utf-8"):
        acc = ((acc ^ byte) * _FNV64_PRIME) & _MASK64
    return acc
from repro.isa.dispatch import AcceleratorComplex
from repro.regex.engine import RegexManager
from repro.runtime.phparray import PhpArray
from repro.runtime.slab import SlabAllocator
from repro.runtime.strings import StringLibrary
from repro.workloads.allocs import AllocOp
from repro.workloads.hashops import HashOp, HashOpGenerator
from repro.workloads.regexops import ReuseTask, SiftTask
from repro.workloads.strops import StrOp


@dataclass
class CategoryRun:
    """Accumulated cost of one category in one mode."""

    category: str
    mode: str                      # 'software' | 'accelerated'
    uops: float = 0.0
    cycles: float = 0.0
    #: accelerator energy events (hash/heap accesses, string blocks, …)
    events: dict[str, int] = field(default_factory=dict)
    checksum: int = 0

    def bump_event(self, name: str, amount: int = 1) -> None:
        self.events[name] = self.events.get(name, 0) + amount

    def mix_checksum(self, value: object) -> None:
        self.checksum = (
            self.checksum * 1099511628211 + stable_hash(value)
        ) & _MASK64

    def efficiency_vs(self, software: "CategoryRun") -> float:
        """Fraction of software cycles the accelerated path removed."""
        if software.cycles <= 0:
            return 0.0
        return max(0.0, 1.0 - self.cycles / software.cycles)


# ---------------------------------------------------------------------------
# Hash category
# ---------------------------------------------------------------------------


class HashSimulator:
    """Executes hash-op streams against PHP arrays ± the accelerator."""

    def __init__(
        self,
        mode: str,
        generator: HashOpGenerator,
        costs: CostModel = DEFAULT_COSTS,
        complex_: Optional[AcceleratorComplex] = None,
    ) -> None:
        if mode not in ("software", "accelerated"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "accelerated" and complex_ is None:
            raise ValueError("accelerated mode needs an AcceleratorComplex")
        self.mode = mode
        self.generator = generator
        self.costs = costs
        self.complex = complex_
        self.run = CategoryRun("hash", mode)
        from repro.common.stats import StatRegistry
        self._sw_stats = StatRegistry(f"hash-{mode}")
        self.maps: dict[int, PhpArray] = {}
        self._value_seq = 0
        self._inserted_keys: dict[int, set[str]] = {}

    # -- software helpers ------------------------------------------------------------

    def _array_for(self, map_id: int) -> PhpArray:
        array = self.maps.get(map_id)
        if array is None:
            array = PhpArray(
                base_address=self.generator.map_base_address(map_id),
                stats=self._sw_stats,
            )
            self.maps[map_id] = array
            self._inserted_keys[map_id] = set()
            if self.complex is not None:
                self.complex.register_map(array)
        return array

    def _next_value(self, key: str) -> str:
        self._value_seq += 1
        return f"{key}#{self._value_seq}"

    # -- execution -----------------------------------------------------------------------

    def execute(self, ops: list[HashOp]) -> None:
        for op in ops:
            if op.kind == "alloc":
                self._array_for(op.map_id)
            elif op.kind == "set":
                self._do_set(op)
            elif op.kind == "get":
                self._do_get(op)
            elif op.kind == "foreach":
                self._do_foreach(op)
            elif op.kind == "free":
                self._do_free(op)
            else:
                raise ValueError(f"unknown hash op {op.kind!r}")

    def _do_set(self, op: HashOp) -> None:
        array = self._array_for(op.map_id)
        value = self._next_value(op.key)
        new_key = op.key not in self._inserted_keys[op.map_id]
        self._inserted_keys[op.map_id].add(op.key)
        if self.mode == "software":
            array.set(op.key, value)
            if new_key:
                self.run.uops += self.costs.hash_insert_extra_uops
            return
        outcome = self.complex.hash_table.set(
            op.key, array.base_address, value
        )
        self.run.bump_event("hash_accesses")
        self.run.uops += self.costs.accel_issue_uops
        self.run.cycles += outcome.cycles
        if outcome.software_fallback:
            self.run.uops += self.costs.fallback_branch_uops
            array.set(op.key, value)
            if new_key:
                self.run.uops += self.costs.hash_insert_extra_uops

    def _do_get(self, op: HashOp) -> None:
        array = self._array_for(op.map_id)
        if self.mode == "software":
            value = array.get_default(op.key)
            if value is None:
                # Cold global key: compute (e.g. DB fetch) and memoize.
                value = f"db:{op.key}"
                array.set(op.key, value)
                self._inserted_keys[op.map_id].add(op.key)
                self.run.uops += self.costs.hash_insert_extra_uops
            self.run.mix_checksum(value)
            return
        outcome = self.complex.hash_table.get(op.key, array.base_address)
        self.run.bump_event("hash_accesses")
        self.run.uops += self.costs.accel_issue_uops
        self.run.cycles += outcome.cycles
        if outcome.hit:
            self.run.mix_checksum(outcome.value_ptr)
            return
        # Zero flag: software walk, then place the pair into the table.
        self.run.uops += self.costs.fallback_branch_uops
        value = array.get_default(op.key)
        if value is None:
            value = f"db:{op.key}"
            array.set(op.key, value)
            self._inserted_keys[op.map_id].add(op.key)
            self.run.uops += self.costs.hash_insert_extra_uops
        fill = self.complex.hash_table.insert_clean(
            op.key, array.base_address, value
        )
        self.run.cycles += fill.cycles
        self.run.bump_event("hash_accesses")
        self.run.mix_checksum(value)

    def _do_foreach(self, op: HashOp) -> None:
        array = self._array_for(op.map_id)
        if self.mode == "accelerated":
            order, synced = self.complex.hash_table.foreach_sync(
                array.base_address
            )
            self.run.cycles += 1 + synced
            self.run.bump_event("hash_accesses", max(1, synced))
            if order:
                # RTT-provided insertion order over the synced values.
                visited = 0
                for key in order:
                    value = array.get_default(key)
                    if value is None:
                        continue
                    visited += 1
                    self.run.mix_checksum((key, value))
                self.run.uops += (
                    visited * self.costs.hash_foreach_per_entry_uops
                )
                return
        visited = 0
        for key, value in array.items():
            visited += 1
            self.run.mix_checksum((key, value))
        self.run.uops += visited * self.costs.hash_foreach_per_entry_uops

    def _do_free(self, op: HashOp) -> None:
        array = self.maps.pop(op.map_id, None)
        self._inserted_keys.pop(op.map_id, None)
        if array is None:
            return
        if self.mode == "accelerated":
            invalidated = self.complex.hash_table.free_map(array.base_address)
            self.run.cycles += 1 + invalidated // 4
            self.complex.drop_map(array.base_address)

    # -- settlement ----------------------------------------------------------------------

    def finish(self) -> CategoryRun:
        """Fold the software-side walk counters into the cost totals."""
        s = self._sw_stats
        walk_uops = self.costs.hash_walk_uops(
            probes=s.get("walk.probes"),
            key_bytes=s.get("walk.key_bytes"),
            ops=s.get("walk.ops"),
        )
        self.run.uops += walk_uops
        # Stale-bucket rebuilds triggered by hardware writebacks.
        self.run.uops += s.get("walk.stale_rebuilds") * 40.0
        self.run.cycles += self.costs.uops_to_cycles(self.run.uops)
        return self.run

    def average_walk_uops(self) -> float:
        """Software µops per hash-map walk (paper: 90.66)."""
        s = self._sw_stats
        ops = s.get("walk.ops")
        if not ops:
            return 0.0
        return self.costs.hash_walk_uops(
            s.get("walk.probes"), s.get("walk.key_bytes"), ops
        ) / ops


# ---------------------------------------------------------------------------
# Heap category
# ---------------------------------------------------------------------------


class HeapSimulator:
    """Executes allocation streams against the slab ± the accelerator."""

    def __init__(
        self,
        mode: str,
        costs: CostModel = DEFAULT_COSTS,
        complex_: Optional[AcceleratorComplex] = None,
        sample_every: int = 0,
    ) -> None:
        self.mode = mode
        self.costs = costs
        self.complex = complex_
        if mode == "accelerated":
            if complex_ is None:
                raise ValueError("accelerated mode needs an AcceleratorComplex")
            self.slab = complex_.slab
        else:
            self.slab = SlabAllocator()
        self.run = CategoryRun("heap", mode)
        self._addresses: dict[int, tuple[int, int]] = {}  # tag -> (addr, size)
        self.sample_every = sample_every
        self._event_count = 0

    def execute(self, ops: list[AllocOp]) -> None:
        for op in ops:
            self._event_count += 1
            if self.sample_every and self._event_count % self.sample_every == 0:
                self.slab.sample_usage()
            if op.kind == "malloc":
                self._do_malloc(op)
            elif op.kind == "free":
                self._do_free(op)
            else:
                raise ValueError(f"unknown alloc op {op.kind!r}")

    def _do_malloc(self, op: AllocOp) -> None:
        if self.mode == "software":
            addr = self.slab.malloc(op.size)
            self.run.uops += self.costs.malloc_uops
        else:
            outcome = self.complex.heap_manager.hmmalloc(op.size)
            self.run.bump_event("heap_accesses")
            self.run.uops += self.costs.accel_issue_uops
            self.run.cycles += outcome.cycles
            if outcome.address is not None:
                addr = outcome.address
                if outcome.software_fallback:
                    self.run.uops += (
                        self.costs.fallback_branch_uops + self.costs.malloc_uops
                    )
            else:
                # Comparator bypass: software allocates entirely.
                addr = self.slab.malloc(op.size)
                self.run.uops += (
                    self.costs.fallback_branch_uops + self.costs.malloc_uops
                )
        self._addresses[op.tag] = (addr, op.size)
        self.run.mix_checksum(op.size)

    def _do_free(self, op: AllocOp) -> None:
        addr, size = self._addresses.pop(op.tag)
        if self.mode == "software":
            self.slab.free(addr)
            self.run.uops += self.costs.free_uops
            return
        outcome = self.complex.heap_manager.hmfree(addr, size)
        self.run.bump_event("heap_accesses")
        self.run.uops += self.costs.accel_issue_uops
        self.run.cycles += outcome.cycles
        if outcome.software_fallback:
            if outcome.overflow_stores:
                self.run.uops += (
                    self.costs.fallback_branch_uops
                    + outcome.overflow_stores * self.costs.overflow_store_uops
                )
            else:
                # Comparator bypass: full software free.
                self.slab.free(addr)
                self.run.uops += (
                    self.costs.fallback_branch_uops + self.costs.free_uops
                )

    def finish(self) -> CategoryRun:
        kernel = self.slab.stats.get("kernel.chunk_allocs")
        self.run.uops += kernel * self.costs.kernel_chunk_uops
        self.run.cycles += self.costs.uops_to_cycles(self.run.uops)
        if self.mode == "accelerated":
            self.run.bump_event(
                "heap_accesses",
                self.complex.heap_manager.stats.get("hwheap.prefetches"),
            )
        return self.run

    @property
    def live_allocations(self) -> int:
        return len(self._addresses)


# ---------------------------------------------------------------------------
# String category
# ---------------------------------------------------------------------------


class StringSimulator:
    """Executes string-op streams on the library ± the accelerator."""

    def __init__(
        self,
        mode: str,
        costs: CostModel = DEFAULT_COSTS,
        complex_: Optional[AcceleratorComplex] = None,
    ) -> None:
        self.mode = mode
        self.costs = costs
        self.complex = complex_
        if mode == "accelerated" and complex_ is None:
            raise ValueError("accelerated mode needs an AcceleratorComplex")
        self.library = StringLibrary()
        self.run = CategoryRun("string", mode)

    def execute(self, ops: list[StrOp]) -> None:
        for op in ops:
            value = (
                self._software_op(op)
                if self.mode == "software"
                else self._accel_op(op)
            )
            self.run.mix_checksum(value)

    def _software_op(self, op: StrOp) -> object:
        lib = self.library
        if op.func == "concat":
            return lib.concat(list(op.parts)).value
        if op.func == "htmlspecialchars":
            return lib.htmlspecialchars(op.subject).value
        if op.func == "strpos":
            return lib.strpos(op.subject, op.pattern).value
        if op.func == "replace":
            return lib.str_replace(op.pattern, op.replacement, op.subject).value
        if op.func == "tolower":
            return lib.strtolower(op.subject).value
        if op.func == "toupper":
            return lib.strtoupper(op.subject).value
        if op.func == "trim":
            return lib.trim(op.subject).value
        if op.func == "translate":
            mapping = dict(zip(op.pattern, op.replacement))
            return lib.strtr(op.subject, mapping).value
        if op.func == "substr":
            return lib.substr(op.subject, int(op.pattern)).value
        if op.func == "strcmp":
            return lib.strcmp(op.subject, op.pattern).value
        raise ValueError(f"unknown string op {op.func!r}")

    def _accel_op(self, op: StrOp) -> object:
        accel = self.complex.string
        self.run.uops += self.costs.accel_issue_uops
        if op.func == "concat":
            joined = "".join(op.parts)
            outcome = accel.copy(joined)
        elif op.func == "htmlspecialchars":
            from repro.runtime.strings import HTML_ESCAPES
            outcome = accel.html_escape(op.subject, HTML_ESCAPES)
        elif op.func == "strpos":
            outcome = accel.find(op.subject, op.pattern)
        elif op.func == "replace":
            outcome = accel.replace(op.subject, op.pattern, op.replacement)
        elif op.func == "tolower":
            outcome = accel.to_lower(op.subject)
        elif op.func == "toupper":
            outcome = accel.to_upper(op.subject)
        elif op.func == "trim":
            outcome = accel.trim(op.subject)
        elif op.func == "translate":
            mapping = dict(zip(op.pattern, op.replacement))
            outcome = accel.translate(op.subject, mapping)
        elif op.func == "substr":
            start = int(op.pattern)
            outcome = accel.copy(op.subject[start:])
        elif op.func == "strcmp":
            outcome = accel.compare(op.subject, op.pattern)
        else:
            raise ValueError(f"unknown string op {op.func!r}")
        self.run.cycles += outcome.cycles
        self.run.bump_event("string_blocks", outcome.blocks)
        return outcome.value

    def finish(self) -> CategoryRun:
        if self.mode == "software":
            self.run.uops += self.library.total_uops
        self.run.cycles += self.costs.uops_to_cycles(self.run.uops)
        return self.run


# ---------------------------------------------------------------------------
# Regex category
# ---------------------------------------------------------------------------


class RegexSimulator:
    """Executes sift/reuse tasks with and without content filtering."""

    def __init__(
        self,
        mode: str,
        costs: CostModel = DEFAULT_COSTS,
        complex_: Optional[AcceleratorComplex] = None,
    ) -> None:
        self.mode = mode
        self.costs = costs
        self.complex = complex_
        if mode == "accelerated" and complex_ is None:
            raise ValueError("accelerated mode needs an AcceleratorComplex")
        self.manager = RegexManager()
        self.run = CategoryRun("regex", mode)
        #: Figure 12 numerators/denominators
        self.chars_total = 0
        self.chars_skipped_sifting = 0
        self.chars_skipped_reuse = 0

    # -- sift tasks ----------------------------------------------------------------------

    def execute_sift(self, tasks: list[SiftTask]) -> None:
        for task in tasks:
            if self.mode == "software":
                self._sift_software(task)
            else:
                self._sift_accelerated(task)

    def _sift_software(self, task: SiftTask) -> None:
        content = task.content
        for i, pattern in enumerate(task.function_set.patterns):
            regex = self.manager.compile(pattern)
            matches, examined = regex.findall(content)
            self._charge_chars(examined, calls=1)
            self.run.mix_checksum((i, len(matches)))
            self.chars_total += len(content)
            if i == 0 and task.function_set.mutating and matches:
                content, _, _ = self._plain_replace(content, matches, "~")

    def _sift_accelerated(self, task: SiftTask) -> None:
        sifter = self.complex.sifter
        content = task.content
        hv, hv_cycles = sifter.build_hint_vector(content)
        self.run.cycles += hv_cycles
        self.run.bump_event(
            "string_blocks",
            max(1, len(content) // self.complex.string.config.block_bytes),
        )
        patterns = task.function_set.patterns
        # The sieve does its normal matching (software FSM) while the
        # string accelerator emits the HV alongside.
        sieve = self.manager.compile(patterns[0])
        matches, examined = sieve.findall(content)
        self._charge_chars(examined, calls=1)
        self.run.mix_checksum((0, len(matches)))
        self.chars_total += len(content)
        if task.function_set.mutating and matches:
            content, hv, pad = sifter.replace_with_padding(
                content, matches, "~", hv
            )
        for i, pattern in enumerate(patterns[1:], start=1):
            regex = self.manager.compile(pattern)
            result = sifter.shadow_findall(regex, content, hv)
            self._charge_chars(result.chars_examined, calls=1)
            self.chars_total += len(content)
            self.chars_skipped_sifting += result.chars_skipped
            self.run.mix_checksum((i, len(result.matches)))

    # -- ablation entry points (techniques disabled) ---------------------------

    def execute_sift_unsifted(self, tasks: list[SiftTask]) -> None:
        """Ablation: no hint vectors — shadows scan everything."""
        for task in tasks:
            self._sift_software(task)

    def execute_reuse_unmemoized(self, tasks: list[ReuseTask]) -> None:
        """Ablation: no reuse table — every scan starts from state 0."""
        for task in tasks:
            regex = self.manager.compile(task.pattern)
            for content in task.contents:
                self.chars_total += len(content)
                outcome = regex.match_prefix(content)
                self._charge_chars(len(content), calls=1)
                end = outcome.match.end if outcome.match else None
                self.run.mix_checksum(end)

    @staticmethod
    def _plain_replace(content, matches, replacement):
        out = []
        cursor = 0
        for m in matches:
            out.append(content[cursor:m.start])
            out.append(replacement)
            cursor = m.end
        out.append(content[cursor:])
        return "".join(out), None, 0

    # -- reuse tasks ----------------------------------------------------------------------

    def execute_reuse(self, tasks: list[ReuseTask]) -> None:
        for task in tasks:
            regex = self.manager.compile(task.pattern)
            for content in task.contents:
                self.chars_total += len(content)
                if self.mode == "software":
                    outcome = regex.match_prefix(content)
                    self._charge_chars(len(content), calls=1)
                    end = outcome.match.end if outcome.match else None
                    self.run.mix_checksum(end)
                else:
                    result = self.complex.reuse_matcher.match(
                        regex, content, pc=task.pc
                    )
                    self.run.bump_event("reuse_accesses")
                    self.run.cycles += (
                        self.complex.reuse_table.config.lookup_cycles
                    )
                    self._charge_chars(result.chars_examined, calls=1)
                    self.chars_skipped_reuse += result.chars_skipped
                    self.run.mix_checksum(result.match_end)

    def _charge_chars(self, chars: int, calls: int) -> None:
        self.run.uops += (
            chars * self.costs.regex_uops_per_char
            + calls * self.costs.regex_call_uops
        )

    def finish(self) -> CategoryRun:
        self.run.cycles += self.costs.uops_to_cycles(self.run.uops)
        return self.run

    def skip_fraction(self) -> float:
        """Figure 12: fraction of content the techniques skipped."""
        if not self.chars_total:
            return 0.0
        return (
            self.chars_skipped_sifting + self.chars_skipped_reuse
        ) / self.chars_total
