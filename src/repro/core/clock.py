"""Sanctioned wall-clock access for the live serving path.

Everything else in this reproduction runs in *event-driven* time —
the DET001 lint rule rejects any ``time.*`` read because figures must
be pure functions of their seed.  The live server
(:mod:`repro.serve`) is the one subsystem whose *output is defined in
wall-clock terms* (latency SLOs, goodput per second), so it needs a
real clock.  This module is the single sanctioned doorway:

**Waiver policy.**  Each clock read below carries a per-line
``# repro: allow(DET001)`` waiver with a reason.  The policy that
keeps the lint gate meaningful:

* No other module may call ``time.*`` directly.  New wall-clock needs
  route through this module (or, for the perf harness, through
  :mod:`repro.core.perf`, which predates this module and is
  ``allow-file``-waived because measuring wall time is its entire
  purpose).
* ``repro/serve/`` is **not** blanket-exempted: a stray
  ``time.time()`` added there still fails ``python -m repro lint``.
* Wall-clock values must never feed a seeded result: they may appear
  in telemetry, perf reports, and provenance stamps, never in
  anything the experiment cache keys or the conformance oracles
  compare.

Only monotonic reads are exposed for measurement (wall-clock deltas
must survive NTP steps); the single civil-time reader exists for
provenance stamps in append-only history rows.
"""

from __future__ import annotations

import time


def monotonic() -> float:
    """Seconds on the process-wide monotonic clock (measurement)."""
    return time.monotonic()  # repro: allow(DET001) — live-path latency measurement; never feeds seeded results


def monotonic_ns() -> int:
    """Nanoseconds on the monotonic clock (fine-grained deltas)."""
    return time.monotonic_ns()  # repro: allow(DET001) — live-path latency measurement; never feeds seeded results


def utc_stamp() -> str:
    """``YYYY-mm-ddTHH:MM:SSZ`` provenance stamp for history rows."""
    return time.strftime(  # repro: allow(DET001) — provenance stamp in append-only history rows only
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime()  # repro: allow(DET001) — provenance stamp in append-only history rows only
    )


async def sleep(seconds: float) -> None:
    """Asyncio sleep, re-exported so serve code has one time module."""
    import asyncio

    await asyncio.sleep(max(0.0, seconds))
