"""Structured export of experiment results (JSON).

Downstream users plotting the reproduction against the paper want
machine-readable numbers, not tables; this module serializes the
evaluation results, keeping only plain data.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.common.rng import DEFAULT_SEED
from repro.core.experiment import AppResult, full_evaluation


def app_result_to_dict(result: AppResult) -> dict[str, Any]:
    """Flatten one application's results to JSON-safe types."""
    return {
        "app": result.app,
        "time_with_priors": result.time_with_priors,
        "time_with_accelerators": result.time_with_accelerators,
        "accel_benefit_total": result.accel_benefit_total,
        "category_fractions": dict(result.category_fractions),
        "benefits": dict(result.benefits),
        "efficiencies": {
            key: comp.efficiency
            for key, comp in result.comparisons.items()
        },
        "uop_reductions": {
            key: comp.uop_reduction
            for key, comp in result.comparisons.items()
        },
        "energy_saving": result.energy_saving,
        "regex_skip_fraction": result.regex_skip_fraction,
        "refcount_saving": result.refcount_saving,
        "hash_specialized_fraction": result.hash_specialized_fraction,
        "hash_hit_rate": result.hash_hit_rate,
        "heap_hit_rate": result.heap_hit_rate,
        "average_walk_uops": result.average_walk_uops,
    }


def evaluation_to_dict(
    results: list[AppResult], seed: int = DEFAULT_SEED
) -> dict[str, Any]:
    """The full Figure 14/15 payload plus paper reference values."""
    n = len(results)
    return {
        "paper": {
            "title": "Architectural Support for Server-Side PHP Processing",
            "venue": "ISCA 2017",
            "doi": "10.1145/3079856.3080234",
            "figure14_average": {"with_priors": 0.8815,
                                 "with_accelerators": 0.7022},
            "figure15_average": {"heap": 0.0729, "hash": 0.0645,
                                 "string": 0.0451, "regex": 0.0196},
            "energy_average": 0.2101,
        },
        "seed": seed,
        "apps": [app_result_to_dict(r) for r in results],
        "averages": {
            "time_with_priors":
                sum(r.time_with_priors for r in results) / n,
            "time_with_accelerators":
                sum(r.time_with_accelerators for r in results) / n,
            "energy_saving":
                sum(r.energy_saving for r in results) / n,
            "benefits": {
                key: sum(r.benefits[key] for r in results) / n
                for key in ("heap", "hash", "string", "regex")
            },
        },
    }


def save_evaluation_json(
    path: str | Path,
    seed: int = DEFAULT_SEED,
    requests: int | None = None,
    results: list[AppResult] | None = None,
    jobs: int | None = None,
) -> Path:
    """Run (or reuse) the evaluation and write it as JSON."""
    if results is None:
        results = full_evaluation(seed=seed, requests=requests, jobs=jobs)
    payload = evaluation_to_dict(results, seed=seed)
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out
