"""Per-request latency distributions over the MiniPHP templates.

Runs a stream of template-rendering requests (the executable
per-application templates of :mod:`repro.workloads.templates`) on the
software and accelerated backends, recording each request's backend
cycles.  Because requests vary in content size and structure, this
yields latency *distributions* — p50/p95/p99 — rather than the single
averaged ratio of Figure 14, and verifies byte-identical pages along
the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.rng import DEFAULT_SEED, DeterministicRng
from repro.common.stats import percentile
from repro.isa.dispatch import AcceleratorComplex
from repro.runtime.interp import (
    AcceleratedBackend,
    MiniPhpInterpreter,
    SoftwareBackend,
)
from repro.workloads.templates import render_app_page

__all__ = [
    "LatencyDistribution", "LatencyReport", "percentile",
    "request_latency_report",
]


@dataclass
class LatencyDistribution:
    """Summary of one backend's per-request cycles."""

    samples: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    def p(self, q: float) -> float:
        return percentile(self.samples, q)


@dataclass
class LatencyReport:
    """Both backends' distributions for one application."""

    app: str
    software: LatencyDistribution
    accelerated: LatencyDistribution
    pages_identical: bool

    @property
    def mean_speedup(self) -> float:
        return self.software.mean / self.accelerated.mean

    @property
    def p99_speedup(self) -> float:
        return self.software.p(99) / self.accelerated.p(99)


def request_latency_report(
    app: str,
    requests: int = 30,
    seed: int = DEFAULT_SEED,
) -> LatencyReport:
    """Render ``requests`` pages per backend; summarize latencies.

    The accelerated backend shares one warm accelerator complex across
    requests (heap free lists and string configuration persist, as on
    a real core serving a request stream); each request still gets a
    fresh interpreter scope.
    """
    complex_ = AcceleratorComplex()
    sw = LatencyDistribution()
    hw = LatencyDistribution()
    identical = True
    for i in range(requests):
        rng_seed = DeterministicRng(seed).fork(f"req-{i}")
        sw_interp = MiniPhpInterpreter(SoftwareBackend())
        page_sw = render_app_page(app, sw_interp, rng_seed)
        sw.samples.append(sw_interp.backend.cost_cycles())

        rng_seed = DeterministicRng(seed).fork(f"req-{i}")
        hw_interp = MiniPhpInterpreter(AcceleratedBackend(complex_))
        start = hw_interp.backend.cost_cycles()
        page_hw = render_app_page(app, hw_interp, rng_seed)
        hw.samples.append(hw_interp.backend.cost_cycles() - start)

        identical = identical and (page_sw == page_hw)
    return LatencyReport(app, sw, hw, identical)
