"""Content-addressed experiment result cache.

Sweeps routinely recompute identical cells: ``full_evaluation`` inside
``fig14``/``fig15``/``energy``/``export``, the fleet (topology ×
balancer) grid inside capacity searches, sensitivity sweeps rerun with
one knob moved.  This module memoizes completed experiment cells in
process memory, keyed on a stable content hash of everything the cell
result depends on:

``blake2b(CODE_SALT \\x1f part_0 \\x1f part_1 ...)``

where each part is the canonical ``repr`` of a cell input (app name,
seed, request count, config dataclass, ...).  ``CODE_SALT`` is a
version string for the simulation code itself — bump it whenever a
change alters experiment *results*, so stale entries can never leak
across code versions (within one process this matters for tests that
monkeypatch kernels; across processes it documents intent).

The cache is deliberately in-memory only: experiment results contain
live objects (simulators, dataclasses with registries) that are cheap
to hold and awkward to serialize faithfully.  Determinism makes the
memoization safe: a cell function must be a pure function of its key
parts.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from typing import Any, Callable

from repro.common.stats import StatRegistry

#: Bump when a code change alters experiment results.
CODE_SALT = "repro-sim-v3"

#: Environment kill switch (``REPRO_EXPCACHE=0`` disables caching).
ENV_DISABLE = "REPRO_EXPCACHE"

_SENTINEL = object()


def cache_key(*parts: Any) -> str:
    """Stable content hash of ``parts`` (salted with :data:`CODE_SALT`).

    Parts are canonicalized via ``repr``; dataclasses, tuples, ints,
    and strings all repr deterministically.  Callers must not pass
    objects whose repr includes memory addresses.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(CODE_SALT.encode("utf-8"))
    for part in parts:
        hasher.update(b"\x1f")
        hasher.update(repr(part).encode("utf-8"))
    return hasher.hexdigest()


class ExperimentCache:
    """In-process memo of experiment cell results."""

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._entries: dict[str, Any] = {}
        self.stats = StatRegistry("expcache")
        self._disabled_depth = 0

    @property
    def enabled(self) -> bool:
        if self._disabled_depth > 0:
            return False
        return os.environ.get(ENV_DISABLE, "1") != "0"

    def lookup(self, key: str) -> tuple[bool, Any]:
        """``(hit, value)`` — value is None on a miss."""
        if not self.enabled:
            self.stats.bump("expcache.bypasses")
            return False, None
        found = self._entries.get(key, _SENTINEL)
        if found is _SENTINEL:
            self.stats.bump("expcache.misses")
            return False, None
        self.stats.bump("expcache.hits")
        return True, found

    def store(self, key: str, value: Any) -> None:
        if not self.enabled:
            return
        if len(self._entries) >= self.max_entries:
            self._entries.clear()
        self._entries[key] = value
        self.stats.bump("expcache.stores")

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """Memoized call: compute once per key, serve hits afterwards."""
        hit, value = self.lookup(key)
        if hit:
            return value
        value = compute()
        self.store(key, value)
        return value

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @contextmanager
    def disabled_scope(self):
        """Temporarily bypass this cache (reads and writes)."""
        self._disabled_depth += 1
        try:
            yield
        finally:
            self._disabled_depth -= 1


#: The default process-wide cache used by the experiment entry points.
EXPERIMENT_CACHE = ExperimentCache()


def default_cache() -> ExperimentCache:
    return EXPERIMENT_CACHE


@contextmanager
def disabled():
    """Bypass the default cache inside the context (perf baselines)."""
    with EXPERIMENT_CACHE.disabled_scope():
        yield
