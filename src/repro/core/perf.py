"""Wall-clock performance harness.

Measures real (not simulated) throughput of the hot kernels and the
end-to-end evaluation, comparing the optimized implementations against
the pinned in-repo reference kernels
(:mod:`repro.accel.reference`) in the same process on the same
machine.  Four metrics:

* **string-accel bytes scanned/sec** — the byte-matrix kernels
  (``find`` / ``char_class_bitmap`` / ``html_escape``) over a
  deterministic HTML-ish corpus, optimized vs reference;
* **hash ops/sec** — a mixed get/set/insert stream through the
  hardware hash table, optimized vs reference probe path;
* **requests simulated/sec + e2e speedup** — ``full_evaluation`` with
  all caches cold, optimized vs :func:`~repro.accel.reference.reference_mode`
  (which also disables the trace-stream, experiment, and compiled-
  pattern caches, i.e. the seed repo's execution profile);
* **fleet events/sec** — arrival/dispatch/completion events through
  one cached-fleet run.

Equivalence is asserted inline: every comparison first checks the
optimized and reference paths produce identical outcomes/reports, so a
speedup can never come from computing something different.

``run_perf`` writes ``benchmarks/out/perf.txt`` (human table) and
``BENCH_perf.json`` at the repo root (machine-readable).  The speedup
floors (≥2.0× string, ≥1.5× e2e) are asserted by
``benchmarks/bench_perf.py`` and by ``python -m repro perf``; the CI
smoke run validates the schema only — wall-clock ratios on shared
runners are load-dependent, so CI never gates on them.
"""

from __future__ import annotations

# repro: allow-file(DET001) — wall-clock time is this module's entire
# output (measured speedups); it never feeds a simulated result.

import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable

from repro.common.rng import DEFAULT_SEED

#: Payload format marker; bump on schema changes.
PERF_SCHEMA = "repro-perf/1"

#: Row format marker for the append-only perf trajectory.
HISTORY_SCHEMA = "repro-perf-history/1"

#: Asserted speedup floors (full harness only, never CI smoke).
STRING_SPEEDUP_MIN = 2.0
E2E_SPEEDUP_MIN = 1.5
#: The optimized hash kernel must never run slower than the pinned
#: reference (a 0.89x cross-PR regression slipped through before the
#: trajectory below existed).
HASH_SPEEDUP_MIN = 1.0

#: ``src/repro/core/perf.py`` → repo root.
REPO_ROOT = Path(__file__).resolve().parents[3]
OUT_DIR = REPO_ROOT / "benchmarks" / "out"
JSON_PATH = REPO_ROOT / "BENCH_perf.json"
HISTORY_PATH = REPO_ROOT / "BENCH_history.jsonl"


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Minimum wall time of ``repeats`` calls (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _string_corpus(paragraphs: int) -> list[str]:
    """Deterministic HTML-ish subjects (no rng needed: fixed text)."""
    base = (
        '<p class="entry">The <a href="https://example.org/author/x">'
        "quick brown fox &amp; friends</a> jumped over the lazy dog "
        "while 42 < 117 and \"quotes\" remained 'unbalanced'.</p> "
    )
    return [base * (3 + (i % 5)) for i in range(paragraphs)]


def _bench_string(smoke: bool) -> dict[str, float]:
    from repro.accel.reference import ReferenceStringAccelerator
    from repro.accel.string_accel import StringAccelerator
    from repro.regex.charset import CharSet
    from repro.runtime.strings import HTML_ESCAPES

    subjects = _string_corpus(4 if smoke else 24)
    patterns = ["author", "lazy dog", "</p>", "unbalanced"]
    char_class = CharSet.of("<>&\"'")
    opt = StringAccelerator()
    ref = ReferenceStringAccelerator()

    def drive(accel: StringAccelerator) -> list:
        outcomes = []
        for subject in subjects:
            for pattern in patterns:
                outcomes.append(accel.find(subject, pattern))
            outcomes.append(accel.char_class_bitmap(subject, char_class, 32))
            outcomes.append(accel.html_escape(subject, HTML_ESCAPES))
        return outcomes

    assert repr(drive(opt)) == repr(drive(ref)), \
        "string kernels diverged from reference"

    scanned = sum(len(s) for s in subjects) * (len(patterns) + 2)
    repeats = 2 if smoke else 4
    t_opt = _best_of(lambda: drive(opt), repeats)
    t_ref = _best_of(lambda: drive(ref), repeats)
    return {
        "bytes_per_sec_optimized": scanned / t_opt,
        "bytes_per_sec_reference": scanned / t_ref,
        "speedup": t_ref / t_opt,
    }


def _bench_hash(smoke: bool) -> dict[str, float]:
    from repro.accel.hash_table import HardwareHashTable
    from repro.accel.reference import ReferenceHardwareHashTable

    n_ops = 2_000 if smoke else 20_000
    keys = [f"key-{i % 257:03d}-{i % 31}" for i in range(n_ops)]
    bases = [0x1000 + (i % 7) * 0x200 for i in range(n_ops)]

    def drive(table: HardwareHashTable) -> list:
        outcomes = []
        for i, (key, base) in enumerate(zip(keys, bases)):
            kind = i % 3
            if kind == 0:
                outcomes.append(table.insert_clean(key, base, i))
            elif kind == 1:
                outcomes.append(table.get(key, base))
            else:
                outcomes.append(table.set(key, base, i))
        return outcomes

    assert (
        repr(drive(HardwareHashTable()))
        == repr(drive(ReferenceHardwareHashTable()))
    ), "hash-table kernels diverged from reference"

    repeats = 2 if smoke else 4
    t_opt = _best_of(lambda: drive(HardwareHashTable()), repeats)
    t_ref = _best_of(lambda: drive(ReferenceHardwareHashTable()), repeats)
    return {
        "ops_per_sec_optimized": n_ops / t_opt,
        "ops_per_sec_reference": n_ops / t_ref,
        "speedup": t_ref / t_opt,
    }


def _bench_e2e(smoke: bool, seed: int) -> dict[str, float]:
    from repro.accel.reference import reference_mode
    from repro.core.expcache import EXPERIMENT_CACHE
    from repro.core.experiment import full_evaluation
    from repro.core.report import energy_report, figure14_report, figure15_report
    from repro.workloads.apps import php_applications
    from repro.workloads.loadgen import TRACE_CACHE

    requests = 2 if smoke else 5

    def render(results) -> str:
        return "\n".join([
            figure14_report(results), figure15_report(results),
            energy_report(results),
        ])

    # Cold optimized run: process-level caches cleared so the timing
    # covers trace generation + both simulation modes, exactly what the
    # reference run pays (intra-run sharing is the optimization).
    EXPERIMENT_CACHE.clear()
    TRACE_CACHE.clear()
    t0 = time.perf_counter()
    opt_results = full_evaluation(seed=seed, requests=requests)
    t_opt = time.perf_counter() - t0
    EXPERIMENT_CACHE.clear()
    TRACE_CACHE.clear()

    with reference_mode():
        t0 = time.perf_counter()
        ref_results = full_evaluation(seed=seed, requests=requests)
        t_ref = time.perf_counter() - t0

    assert render(opt_results) == render(ref_results), \
        "optimized evaluation reports diverged from reference kernels"

    # Each app is simulated twice (software + accelerated drive).
    simulated = len(php_applications()) * requests * 2
    return {
        "seconds_optimized": t_opt,
        "seconds_reference": t_ref,
        "speedup": t_ref / t_opt,
        "requests_per_sec": simulated / t_opt,
    }


def _bench_fleet(smoke: bool, seed: int) -> dict[str, float]:
    from repro.fleet.simulator import FleetConfig, run_fleet
    from repro.fleet.topology import CacheTierConfig, homogeneous_fleet

    requests = 400 if smoke else 4_000
    topo = homogeneous_fleet(
        "perf-fleet", (1.0, 1.2, 0.9), nodes=4,
        cache=CacheTierConfig(shards=4, shard_capacity=256),
    )
    cfg = FleetConfig(requests=requests, warmup_requests=20)

    t0 = time.perf_counter()
    report = run_fleet(topo, cfg, seed=seed)
    elapsed = time.perf_counter() - t0
    # Every offered request produces at least arrival + dispatch +
    # completion events; count the conservative 3-event floor.
    events = 3 * report.offered
    return {
        "events_per_sec": events / elapsed,
        "requests": float(report.offered),
    }


def run_perf(
    smoke: bool = False,
    seed: int = DEFAULT_SEED,
    check_speedups: bool | None = None,
) -> dict[str, Any]:
    """Run all four benches; returns (and persists) the payload.

    ``check_speedups`` defaults to ``not smoke``: the full harness
    asserts the pinned floors, the CI smoke run only validates the
    schema (shared runners make wall-clock ratios unreliable).
    """
    if check_speedups is None:
        check_speedups = not smoke
    payload: dict[str, Any] = {
        "schema": PERF_SCHEMA,
        "smoke": smoke,
        "seed": seed,
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "metrics": {
            "string_accel": _bench_string(smoke),
            "hash_table": _bench_hash(smoke),
            "e2e_full_evaluation": _bench_e2e(smoke, seed),
            "fleet": _bench_fleet(smoke, seed),
        },
        "floors": {
            "string_speedup_min": STRING_SPEEDUP_MIN,
            "e2e_speedup_min": E2E_SPEEDUP_MIN,
            "hash_speedup_min": HASH_SPEEDUP_MIN,
            "asserted": check_speedups,
        },
    }
    validate_perf_payload(payload)
    if check_speedups:
        string_speedup = payload["metrics"]["string_accel"]["speedup"]
        hash_speedup = payload["metrics"]["hash_table"]["speedup"]
        e2e_speedup = payload["metrics"]["e2e_full_evaluation"]["speedup"]
        assert string_speedup >= STRING_SPEEDUP_MIN, (
            f"string-accel speedup {string_speedup:.2f}x below the "
            f"{STRING_SPEEDUP_MIN}x floor"
        )
        assert hash_speedup >= HASH_SPEEDUP_MIN, (
            f"hash-table speedup {hash_speedup:.2f}x below the "
            f"{HASH_SPEEDUP_MIN}x floor (optimized kernel slower than "
            f"the pinned reference)"
        )
        assert e2e_speedup >= E2E_SPEEDUP_MIN, (
            f"end-to-end speedup {e2e_speedup:.2f}x below the "
            f"{E2E_SPEEDUP_MIN}x floor"
        )
    _persist(payload)
    return payload


def history_row(payload: dict[str, Any]) -> dict[str, Any]:
    """Condense one perf payload into an append-only trajectory row.

    The row keeps exactly what a cross-PR regression scan needs — the
    four headline ratios plus provenance — so the file stays small
    enough to diff at PR time.
    """
    m = payload["metrics"]
    return {
        "schema": HISTORY_SCHEMA,
        "recorded_utc": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "smoke": payload["smoke"],
        "seed": payload["seed"],
        "host": dict(payload["host"]),
        "string_speedup": m["string_accel"]["speedup"],
        "hash_speedup": m["hash_table"]["speedup"],
        "e2e_speedup": m["e2e_full_evaluation"]["speedup"],
        "fleet_events_per_sec": m["fleet"]["events_per_sec"],
        "floors_asserted": payload["floors"]["asserted"],
    }


def validate_history_row(row: dict[str, Any]) -> None:
    """Schema check for one ``BENCH_history.jsonl`` row."""
    if row.get("schema") != HISTORY_SCHEMA:
        raise ValueError(
            f"unexpected history schema: {row.get('schema')!r}"
        )
    for name in ("string_speedup", "hash_speedup", "e2e_speedup",
                 "fleet_events_per_sec"):
        value = row.get(name)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(
                f"history row [{name!r}] must be a positive number, "
                f"got {value!r}"
            )
    for name in ("smoke", "floors_asserted"):
        if not isinstance(row.get(name), bool):
            raise ValueError(f"history row [{name!r}] must be a bool")
    if not isinstance(row.get("seed"), int):
        raise ValueError("history row ['seed'] must be an int")
    host = row.get("host")
    if not isinstance(host, dict) or not host.get("python"):
        raise ValueError("history row ['host'] must name the python")
    if not isinstance(row.get("recorded_utc"), str):
        raise ValueError("history row ['recorded_utc'] must be a string")


def append_history(
    payload: dict[str, Any], path: Path | None = None
) -> Path:
    """Append one schema-checked row to the perf trajectory file."""
    row = history_row(payload)
    validate_history_row(row)
    path = path or HISTORY_PATH
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def validate_perf_payload(payload: dict[str, Any]) -> None:
    """Schema check for the perf payload (the CI smoke gate)."""
    if payload.get("schema") != PERF_SCHEMA:
        raise ValueError(
            f"unexpected perf schema: {payload.get('schema')!r}"
        )
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError("perf payload missing 'metrics' mapping")
    required = {
        "string_accel": ("bytes_per_sec_optimized",
                         "bytes_per_sec_reference", "speedup"),
        "hash_table": ("ops_per_sec_optimized",
                       "ops_per_sec_reference", "speedup"),
        "e2e_full_evaluation": ("seconds_optimized", "seconds_reference",
                                "speedup", "requests_per_sec"),
        "fleet": ("events_per_sec",),
    }
    for section, fields in required.items():
        body = metrics.get(section)
        if not isinstance(body, dict):
            raise ValueError(f"perf payload missing metrics[{section!r}]")
        for name in fields:
            value = body.get(name)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(
                    f"metrics[{section!r}][{name!r}] must be a positive "
                    f"number, got {value!r}"
                )


def format_perf_report(payload: dict[str, Any]) -> str:
    from repro.core.report import format_table

    m = payload["metrics"]
    rows = [
        ["string accel (bytes/s)",
         f"{m['string_accel']['bytes_per_sec_optimized']:,.0f}",
         f"{m['string_accel']['bytes_per_sec_reference']:,.0f}",
         f"{m['string_accel']['speedup']:.2f}x"],
        ["hash table (ops/s)",
         f"{m['hash_table']['ops_per_sec_optimized']:,.0f}",
         f"{m['hash_table']['ops_per_sec_reference']:,.0f}",
         f"{m['hash_table']['speedup']:.2f}x"],
        ["full evaluation (req/s)",
         f"{m['e2e_full_evaluation']['requests_per_sec']:,.1f}",
         "-",
         f"{m['e2e_full_evaluation']['speedup']:.2f}x"],
        ["fleet (events/s)",
         f"{m['fleet']['events_per_sec']:,.0f}", "-", "-"],
    ]
    mode = "smoke" if payload["smoke"] else "full"
    return format_table(
        ["kernel", "optimized", "reference", "speedup"], rows,
        title=f"Wall-clock performance vs pinned reference kernels ({mode})",
    )


def _persist(payload: dict[str, Any]) -> None:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUT_DIR / "perf.txt").write_text(format_perf_report(payload) + "\n")
    JSON_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    # Append-only trajectory: BENCH_perf.json holds only the latest
    # run, so cross-PR regressions (like the 0.89x hash kernel this
    # floor now guards) are invisible there; the history file keeps
    # every run and travels to CI as an artifact.
    append_history(payload)
