"""Wall-clock performance harness.

Measures real (not simulated) throughput of the hot kernels and the
end-to-end evaluation, comparing every registered accelerator backend
(:mod:`repro.accel.registry` — ``optimized``, ``bulk``, ...) against
the pinned in-repo reference kernels
(:mod:`repro.accel.reference`) in the same process on the same
machine.  Four metrics:

* **string-accel bytes scanned/sec** — the byte-matrix kernels
  (``find`` / ``char_class_bitmap`` / ``html_escape``) over a
  deterministic HTML-ish corpus, per backend vs reference;
* **hash ops/sec** — a mixed get/set/insert stream through the
  hardware hash table, per backend vs reference probe path;
* **requests simulated/sec + e2e speedup** — ``full_evaluation`` with
  all caches cold, per backend vs :func:`~repro.accel.reference.reference_mode`
  (which also disables the trace-stream, experiment, and compiled-
  pattern caches, i.e. the seed repo's execution profile);
* **fleet events/sec** — arrival/dispatch/completion events through
  one cached-fleet run (backend-independent; measured once).

The measured backend set comes from
``REGISTRY.measured_backends()`` — every registered backend except the
``reference`` baseline, skipping ones that would silently degrade to
``optimized`` here (e.g. ``bulk`` without numpy).  Adding a backend
module under ``repro.accel.backends/`` grows new rows with zero edits
in this file.

Equivalence is asserted inline: every comparison first checks that the
backend and reference paths produce identical outcomes/reports, so a
speedup can never come from computing something different.

``run_perf`` writes ``benchmarks/out/perf.txt`` (human table) and
``BENCH_perf.json`` at the repo root (machine-readable).  The speedup
floors (≥2.0× string, ≥1.5× e2e, ≥1.2× hash, ≥2.5× bulk string) are
asserted by ``benchmarks/bench_perf.py`` and by ``python -m repro
perf``; the CI smoke run validates the schema only — wall-clock ratios
on shared runners are load-dependent, so CI never gates on them.
"""

from __future__ import annotations

# repro: allow-file(DET001) — wall-clock time is this module's entire
# output (measured speedups); it never feeds a simulated result.

import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable

from repro.common.rng import DEFAULT_SEED

#: Payload format marker; bump on schema changes.
#: ``/2``: per-backend metric rows under ``metrics[*]["backends"]``
#: (the ``/1`` top-level optimized-vs-reference fields remain as
#: mirrors of the ``optimized`` backend for older tooling).
PERF_SCHEMA = "repro-perf/2"

#: Row format marker for the append-only perf trajectory.  Rows gained
#: an optional ``backend`` field with the backend registry; rows
#: written before it (no ``backend`` key) still validate.
HISTORY_SCHEMA = "repro-perf-history/1"

#: Asserted speedup floors (full harness only, never CI smoke).
STRING_SPEEDUP_MIN = 2.0
E2E_SPEEDUP_MIN = 1.5
#: The optimized hash kernel measured 1.42x after the PR-6 fix; 1.2
#: guards most of that win (the old 1.0 floor only caught a kernel
#: running outright slower than the pinned reference).
HASH_SPEEDUP_MIN = 1.2
#: The numpy-vectorized string backend must clearly beat the pinned
#: reference, not merely edge past it.
BULK_STRING_SPEEDUP_MIN = 2.5

#: ``src/repro/core/perf.py`` → repo root.
REPO_ROOT = Path(__file__).resolve().parents[3]
OUT_DIR = REPO_ROOT / "benchmarks" / "out"
JSON_PATH = REPO_ROOT / "BENCH_perf.json"
HISTORY_PATH = REPO_ROOT / "BENCH_history.jsonl"


def string_floor(backend: str) -> float:
    """The asserted string-accel floor for one backend."""
    return BULK_STRING_SPEEDUP_MIN if backend == "bulk" \
        else STRING_SPEEDUP_MIN


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Minimum wall time of ``repeats`` calls (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _string_corpus(paragraphs: int) -> list[str]:
    """Deterministic HTML-ish subjects (no rng needed: fixed text)."""
    base = (
        '<p class="entry">The <a href="https://example.org/author/x">'
        "quick brown fox &amp; friends</a> jumped over the lazy dog "
        "while 42 < 117 and \"quotes\" remained 'unbalanced'.</p> "
    )
    return [base * (3 + (i % 5)) for i in range(paragraphs)]


def _measured_backends(
    backends: tuple[str, ...] | None,
) -> tuple[str, ...]:
    """Resolve (and validate) the backend set one run measures."""
    from repro.accel.registry import REFERENCE_BACKEND, REGISTRY

    if backends is None:
        return REGISTRY.measured_backends()
    known = REGISTRY.backend_names()
    for name in backends:
        if name == REFERENCE_BACKEND:
            raise ValueError(
                "'reference' is the baseline every backend is measured "
                "against; pick one of: "
                + ", ".join(REGISTRY.measured_backends())
            )
        if name not in known:
            raise ValueError(
                f"unknown backend {name!r}; registered: "
                + ", ".join(known)
            )
    if not backends:
        raise ValueError("no backends to measure")
    return tuple(backends)


def _bench_string(
    smoke: bool, backends: tuple[str, ...]
) -> dict[str, Any]:
    from repro.accel.reference import ReferenceStringAccelerator
    from repro.accel.registry import backend_mode
    from repro.accel.string_accel import StringAccelerator
    from repro.regex.charset import CharSet
    from repro.runtime.strings import HTML_ESCAPES

    subjects = _string_corpus(4 if smoke else 24)
    # Four early-match patterns plus one miss: real scanning workloads
    # include "not found", which exercises the whole-subject regime
    # the bulk backend batches for.
    patterns = ["author", "lazy dog", "</p>", "unbalanced", "</article>"]
    char_class = CharSet.of("<>&\"'")
    opt = StringAccelerator()
    ref = ReferenceStringAccelerator()

    def drive(accel: StringAccelerator) -> list:
        outcomes = []
        for subject in subjects:
            for pattern in patterns:
                outcomes.append(accel.find(subject, pattern))
            outcomes.append(accel.char_class_bitmap(subject, char_class, 32))
            outcomes.append(accel.html_escape(subject, HTML_ESCAPES))
        return outcomes

    scanned = sum(len(s) for s in subjects) * (len(patterns) + 2)
    repeats = 2 if smoke else 4
    ref_repr = repr(drive(ref))
    t_ref = _best_of(lambda: drive(ref), repeats)
    rows: dict[str, dict[str, float]] = {}
    for name in backends:
        with backend_mode(name):
            assert repr(drive(opt)) == ref_repr, (
                f"string kernels [{name}] diverged from reference"
            )
            t = _best_of(lambda: drive(opt), repeats)
        rows[name] = {
            "bytes_per_sec": scanned / t,
            "speedup": t_ref / t,
        }
    mirror = rows["optimized" if "optimized" in rows else backends[0]]
    return {
        "bytes_per_sec_reference": scanned / t_ref,
        "backends": rows,
        # /1 mirrors (default backend) for older tooling.
        "bytes_per_sec_optimized": mirror["bytes_per_sec"],
        "speedup": mirror["speedup"],
    }


def _bench_hash(
    smoke: bool, backends: tuple[str, ...]
) -> dict[str, Any]:
    from repro.accel.hash_table import HardwareHashTable
    from repro.accel.reference import ReferenceHardwareHashTable
    from repro.accel.registry import backend_mode

    n_ops = 2_000 if smoke else 20_000
    keys = [f"key-{i % 257:03d}-{i % 31}" for i in range(n_ops)]
    bases = [0x1000 + (i % 7) * 0x200 for i in range(n_ops)]

    def drive(table: HardwareHashTable) -> list:
        outcomes = []
        for i, (key, base) in enumerate(zip(keys, bases)):
            kind = i % 3
            if kind == 0:
                outcomes.append(table.insert_clean(key, base, i))
            elif kind == 1:
                outcomes.append(table.get(key, base))
            else:
                outcomes.append(table.set(key, base, i))
        return outcomes

    repeats = 2 if smoke else 4
    ref_repr = repr(drive(ReferenceHardwareHashTable()))
    t_ref = _best_of(lambda: drive(ReferenceHardwareHashTable()), repeats)
    rows: dict[str, dict[str, float]] = {}
    for name in backends:
        with backend_mode(name):
            assert repr(drive(HardwareHashTable())) == ref_repr, (
                f"hash-table kernels [{name}] diverged from reference"
            )
            t = _best_of(lambda: drive(HardwareHashTable()), repeats)
        rows[name] = {
            "ops_per_sec": n_ops / t,
            "speedup": t_ref / t,
        }
    mirror = rows["optimized" if "optimized" in rows else backends[0]]
    return {
        "ops_per_sec_reference": n_ops / t_ref,
        "backends": rows,
        "ops_per_sec_optimized": mirror["ops_per_sec"],
        "speedup": mirror["speedup"],
    }


def _bench_e2e(
    smoke: bool, seed: int, backends: tuple[str, ...]
) -> dict[str, Any]:
    from repro.accel.reference import reference_mode
    from repro.accel.registry import backend_mode
    from repro.core.expcache import EXPERIMENT_CACHE
    from repro.core.experiment import full_evaluation
    from repro.core.report import energy_report, figure14_report, figure15_report
    from repro.workloads.apps import php_applications
    from repro.workloads.loadgen import TRACE_CACHE

    requests = 2 if smoke else 5

    def render(results) -> str:
        return "\n".join([
            figure14_report(results), figure15_report(results),
            energy_report(results),
        ])

    # One cold run each under smoke; best-of-2 in the full harness —
    # a single 1-second sample is noise-dominated on a busy machine,
    # and the first optimized run also pays one-time lru-cache fills
    # (pattern tables, translate tables) that are process-lifetime
    # state, not per-evaluation work.
    repeats = 1 if smoke else 2

    def timed_reference() -> tuple[float, Any]:
        with reference_mode():
            t0 = time.perf_counter()
            results = full_evaluation(seed=seed, requests=requests)
            return time.perf_counter() - t0, results

    t_ref, ref_results = timed_reference()
    for _ in range(repeats - 1):
        t_ref = min(t_ref, timed_reference()[0])
    ref_render = render(ref_results)

    def timed_backend(name: str) -> tuple[float, Any]:
        # Cold run: process-level caches cleared so the timing covers
        # trace generation + both simulation modes, exactly what the
        # reference run pays (intra-run sharing is the optimization).
        EXPERIMENT_CACHE.clear()
        TRACE_CACHE.clear()
        with backend_mode(name):
            t0 = time.perf_counter()
            results = full_evaluation(seed=seed, requests=requests)
            t = time.perf_counter() - t0
        EXPERIMENT_CACHE.clear()
        TRACE_CACHE.clear()
        return t, results

    # Each app is simulated twice (software + accelerated drive).
    simulated = len(php_applications()) * requests * 2
    rows: dict[str, dict[str, float]] = {}
    for name in backends:
        t, results = timed_backend(name)
        assert render(results) == ref_render, (
            f"evaluation reports [{name}] diverged from reference kernels"
        )
        for _ in range(repeats - 1):
            t = min(t, timed_backend(name)[0])
        rows[name] = {
            "seconds": t,
            "speedup": t_ref / t,
            "requests_per_sec": simulated / t,
        }
    mirror = rows["optimized" if "optimized" in rows else backends[0]]
    return {
        "seconds_reference": t_ref,
        "backends": rows,
        "seconds_optimized": mirror["seconds"],
        "speedup": mirror["speedup"],
        "requests_per_sec": mirror["requests_per_sec"],
    }


def _bench_fleet(smoke: bool, seed: int) -> dict[str, float]:
    from repro.fleet.simulator import FleetConfig, run_fleet
    from repro.fleet.topology import CacheTierConfig, homogeneous_fleet

    requests = 400 if smoke else 4_000
    topo = homogeneous_fleet(
        "perf-fleet", (1.0, 1.2, 0.9), nodes=4,
        cache=CacheTierConfig(shards=4, shard_capacity=256),
    )
    cfg = FleetConfig(requests=requests, warmup_requests=20)

    t0 = time.perf_counter()
    report = run_fleet(topo, cfg, seed=seed)
    elapsed = time.perf_counter() - t0
    # Every offered request produces at least arrival + dispatch +
    # completion events; count the conservative 3-event floor.
    events = 3 * report.offered
    return {
        "events_per_sec": events / elapsed,
        "requests": float(report.offered),
    }


def run_perf(
    smoke: bool = False,
    seed: int = DEFAULT_SEED,
    check_speedups: bool | None = None,
    backends: tuple[str, ...] | None = None,
) -> dict[str, Any]:
    """Run all four benches; returns (and persists) the payload.

    ``check_speedups`` defaults to ``not smoke``: the full harness
    asserts the pinned floors, the CI smoke run only validates the
    schema (shared runners make wall-clock ratios unreliable).

    ``backends`` restricts the measured backend set (e.g. the CLI's
    ``--backend bulk``); the default is every available non-reference
    backend from the registry.
    """
    from repro.accel.registry import available_backends

    if check_speedups is None:
        check_speedups = not smoke
    backends = _measured_backends(backends)
    payload: dict[str, Any] = {
        "schema": PERF_SCHEMA,
        "smoke": smoke,
        "seed": seed,
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "backends": available_backends(),
        "measured_backends": list(backends),
        "metrics": {
            "string_accel": _bench_string(smoke, backends),
            "hash_table": _bench_hash(smoke, backends),
            "e2e_full_evaluation": _bench_e2e(smoke, seed, backends),
            "fleet": _bench_fleet(smoke, seed),
        },
        "floors": {
            "string_speedup_min": STRING_SPEEDUP_MIN,
            "e2e_speedup_min": E2E_SPEEDUP_MIN,
            "hash_speedup_min": HASH_SPEEDUP_MIN,
            "bulk_string_speedup_min": BULK_STRING_SPEEDUP_MIN,
            "asserted": check_speedups,
        },
    }
    validate_perf_payload(payload)
    if check_speedups:
        m = payload["metrics"]
        for name in backends:
            string_speedup = m["string_accel"]["backends"][name]["speedup"]
            hash_speedup = m["hash_table"]["backends"][name]["speedup"]
            e2e_speedup = \
                m["e2e_full_evaluation"]["backends"][name]["speedup"]
            floor = string_floor(name)
            assert string_speedup >= floor, (
                f"string-accel [{name}] speedup {string_speedup:.2f}x "
                f"below the {floor}x floor"
            )
            assert hash_speedup >= HASH_SPEEDUP_MIN, (
                f"hash-table [{name}] speedup {hash_speedup:.2f}x below "
                f"the {HASH_SPEEDUP_MIN}x floor (kernel slower than the "
                f"PR-6 fix guards)"
            )
            assert e2e_speedup >= E2E_SPEEDUP_MIN, (
                f"end-to-end [{name}] speedup {e2e_speedup:.2f}x below "
                f"the {E2E_SPEEDUP_MIN}x floor"
            )
    _persist(payload)
    return payload


def history_row(
    payload: dict[str, Any], backend: str | None = None
) -> dict[str, Any]:
    """Condense one perf payload into an append-only trajectory row.

    The row keeps exactly what a cross-PR regression scan needs — the
    headline ratios for one backend plus provenance — so the file
    stays small enough to diff at PR time.
    """
    m = payload["metrics"]
    measured = payload.get(
        "measured_backends",
        list(m["string_accel"]["backends"]),
    )
    if backend is None:
        backend = "optimized" if "optimized" in measured else measured[0]
    return {
        "schema": HISTORY_SCHEMA,
        "recorded_utc": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "smoke": payload["smoke"],
        "seed": payload["seed"],
        "host": dict(payload["host"]),
        "backend": backend,
        "string_speedup": m["string_accel"]["backends"][backend]["speedup"],
        "hash_speedup": m["hash_table"]["backends"][backend]["speedup"],
        "e2e_speedup":
            m["e2e_full_evaluation"]["backends"][backend]["speedup"],
        "fleet_events_per_sec": m["fleet"]["events_per_sec"],
        "floors_asserted": payload["floors"]["asserted"],
    }


def validate_history_row(row: dict[str, Any]) -> None:
    """Schema check for one ``BENCH_history.jsonl`` row.

    Rows written before the backend registry carry no ``backend``
    field; they must keep validating.
    """
    if row.get("schema") != HISTORY_SCHEMA:
        raise ValueError(
            f"unexpected history schema: {row.get('schema')!r}"
        )
    for name in ("string_speedup", "hash_speedup", "e2e_speedup",
                 "fleet_events_per_sec"):
        value = row.get(name)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(
                f"history row [{name!r}] must be a positive number, "
                f"got {value!r}"
            )
    for name in ("smoke", "floors_asserted"):
        if not isinstance(row.get(name), bool):
            raise ValueError(f"history row [{name!r}] must be a bool")
    if not isinstance(row.get("seed"), int):
        raise ValueError("history row ['seed'] must be an int")
    host = row.get("host")
    if not isinstance(host, dict) or not host.get("python"):
        raise ValueError("history row ['host'] must name the python")
    if not isinstance(row.get("recorded_utc"), str):
        raise ValueError("history row ['recorded_utc'] must be a string")
    if "backend" in row:
        backend = row["backend"]
        if not isinstance(backend, str) or not backend:
            raise ValueError(
                "history row ['backend'] must be a non-empty string"
            )


def append_history(
    payload: dict[str, Any], path: Path | None = None
) -> Path:
    """Append one schema-checked row per measured backend."""
    measured = payload.get(
        "measured_backends",
        list(payload["metrics"]["string_accel"]["backends"]),
    )
    path = path or HISTORY_PATH
    with path.open("a", encoding="utf-8") as fh:
        for backend in measured:
            row = history_row(payload, backend)
            validate_history_row(row)
            fh.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def _validate_backend_rows(
    section: str, body: dict[str, Any], fields: tuple[str, ...]
) -> None:
    rows = body.get("backends")
    if not isinstance(rows, dict) or not rows:
        raise ValueError(
            f"metrics[{section!r}]['backends'] must map backend names "
            f"to metric rows"
        )
    for backend, row in rows.items():
        if not isinstance(row, dict):
            raise ValueError(
                f"metrics[{section!r}]['backends'][{backend!r}] must "
                f"be a mapping"
            )
        for name in fields:
            value = row.get(name)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(
                    f"metrics[{section!r}]['backends'][{backend!r}]"
                    f"[{name!r}] must be a positive number, got {value!r}"
                )


def validate_perf_payload(payload: dict[str, Any]) -> None:
    """Schema check for the perf payload (the CI smoke gate)."""
    if payload.get("schema") != PERF_SCHEMA:
        raise ValueError(
            f"unexpected perf schema: {payload.get('schema')!r}"
        )
    if not isinstance(payload.get("smoke"), bool):
        raise ValueError("perf payload ['smoke'] must be a bool")
    if not isinstance(payload.get("seed"), int):
        raise ValueError("perf payload ['seed'] must be an int")
    host = payload.get("host")
    if not isinstance(host, dict) or not host.get("python"):
        raise ValueError("perf payload ['host'] must name the python")
    backends = payload.get("backends")
    if not isinstance(backends, list) or not backends or any(
        not isinstance(row, dict) or not row.get("name")
        for row in backends
    ):
        raise ValueError(
            "perf payload ['backends'] must be a non-empty list of "
            "named backend rows"
        )
    floors = payload.get("floors")
    if not isinstance(floors, dict) or \
            not isinstance(floors.get("asserted"), bool):
        raise ValueError(
            "perf payload ['floors']['asserted'] must be a bool"
        )
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError("perf payload missing 'metrics' mapping")
    required = {
        "string_accel": ("bytes_per_sec_optimized",
                         "bytes_per_sec_reference", "speedup"),
        "hash_table": ("ops_per_sec_optimized",
                       "ops_per_sec_reference", "speedup"),
        "e2e_full_evaluation": ("seconds_optimized", "seconds_reference",
                                "speedup", "requests_per_sec"),
        "fleet": ("events_per_sec",),
    }
    for section, fields in required.items():
        body = metrics.get(section)
        if not isinstance(body, dict):
            raise ValueError(f"perf payload missing metrics[{section!r}]")
        for name in fields:
            value = body.get(name)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(
                    f"metrics[{section!r}][{name!r}] must be a positive "
                    f"number, got {value!r}"
                )
    _validate_backend_rows(
        "string_accel", metrics["string_accel"],
        ("bytes_per_sec", "speedup"),
    )
    _validate_backend_rows(
        "hash_table", metrics["hash_table"], ("ops_per_sec", "speedup")
    )
    _validate_backend_rows(
        "e2e_full_evaluation", metrics["e2e_full_evaluation"],
        ("seconds", "speedup", "requests_per_sec"),
    )
    measured = payload.get("measured_backends")
    if not isinstance(measured, list) or not measured:
        raise ValueError(
            "perf payload ['measured_backends'] must be a non-empty list"
        )
    for section in ("string_accel", "hash_table", "e2e_full_evaluation"):
        missing = [
            name for name in measured
            if name not in metrics[section]["backends"]
        ]
        if missing:
            raise ValueError(
                f"metrics[{section!r}]['backends'] missing measured "
                f"backend(s): {', '.join(missing)}"
            )


def format_perf_report(payload: dict[str, Any]) -> str:
    from repro.core.report import format_table

    m = payload["metrics"]
    # Render in measured order (a list, so JSON round-trips preserve
    # it; the backends *mapping* is re-sorted by the persist step).
    order = payload.get("measured_backends") or list(
        m["string_accel"]["backends"]
    )
    rows = []
    for name in order:
        row = m["string_accel"]["backends"][name]
        rows.append([
            f"string accel (bytes/s) [{name}]",
            f"{row['bytes_per_sec']:,.0f}",
            f"{m['string_accel']['bytes_per_sec_reference']:,.0f}",
            f"{row['speedup']:.2f}x",
        ])
    for name in order:
        row = m["hash_table"]["backends"][name]
        rows.append([
            f"hash table (ops/s) [{name}]",
            f"{row['ops_per_sec']:,.0f}",
            f"{m['hash_table']['ops_per_sec_reference']:,.0f}",
            f"{row['speedup']:.2f}x",
        ])
    for name in order:
        row = m["e2e_full_evaluation"]["backends"][name]
        rows.append([
            f"full evaluation (req/s) [{name}]",
            f"{row['requests_per_sec']:,.1f}",
            "-",
            f"{row['speedup']:.2f}x",
        ])
    rows.append([
        "fleet (events/s)",
        f"{m['fleet']['events_per_sec']:,.0f}", "-", "-",
    ])
    mode = "smoke" if payload["smoke"] else "full"
    return format_table(
        ["kernel [backend]", "measured", "reference", "speedup"], rows,
        title=f"Wall-clock performance vs pinned reference kernels ({mode})",
    )


def _persist(payload: dict[str, Any]) -> None:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUT_DIR / "perf.txt").write_text(format_perf_report(payload) + "\n")
    JSON_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    # Append-only trajectory: BENCH_perf.json holds only the latest
    # run, so cross-PR regressions (like the 0.89x hash kernel the
    # hash floor now guards) are invisible there; the history file
    # keeps every run (one row per measured backend) and travels to CI
    # as an artifact.
    append_history(payload)
