"""Experiment harness: every figure of the paper as a function.

Each ``fig*``-oriented entry point returns plain data (dataclasses /
dicts of floats) that the benchmarks print in the paper's layout and
the tests assert shape properties on.  ``run_app_experiment`` is the
centerpiece: it produces the Figure 14 execution-time bars, the
Figure 15 per-accelerator benefit breakdown, and the Section 5.2
energy numbers for one application from actual trace simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.rng import DEFAULT_SEED, DeterministicRng
from repro.core.costs import DEFAULT_COSTS, CostModel
from repro.core.execute import (
    CategoryRun,
    HashSimulator,
    HeapSimulator,
    RegexSimulator,
    StringSimulator,
)
from repro.isa.dispatch import AcceleratorComplex, ComplexConfig
from repro.accel.hash_table import HashTableConfig
from repro.power.mcpat import EnergyLedger, energy_savings
from repro.uarch.core import (
    CharacterizationRun,
    CoreConfig,
    estimate_cycles,
    sweep_btb_and_icache,
    sweep_cores,
)
from repro.workloads.apps import AppWorkload, php_applications, specweb_profile
from repro.workloads.loadgen import TRACE_CACHE
from repro.workloads.profiles import (
    ACCELERATED,
    Activity,
    Profile,
    apply_mitigations,
)


@dataclass
class CategoryComparison:
    """Software vs accelerated execution of one activity category."""

    software: CategoryRun
    accelerated: CategoryRun

    @property
    def efficiency(self) -> float:
        return self.accelerated.efficiency_vs(self.software)

    @property
    def uop_reduction(self) -> float:
        if self.software.uops <= 0:
            return 0.0
        return max(0.0, 1.0 - self.accelerated.uops / self.software.uops)


@dataclass
class AppResult:
    """Everything Figures 14/15 and Section 5.2 report for one app."""

    app: str
    #: Figure 14 middle bar: time with prior optimizations (of baseline).
    time_with_priors: float
    #: Figure 14 right bar: time with priors + accelerators.
    time_with_accelerators: float
    #: per-category fraction of the *optimized* execution time (Fig 5).
    category_fractions: dict[str, float]
    #: per-category software-vs-hardware comparison.
    comparisons: dict[str, CategoryComparison]
    #: Figure 15: benefit of each accelerator (fraction of optimized time).
    benefits: dict[str, float]
    #: Section 5.2: fractional energy saving vs the optimized baseline.
    energy_saving: float
    #: Figure 12: content fraction skipped by sifting + reuse.
    regex_skip_fraction: float
    #: Section 3 anchor: refcount mitigation's share of baseline time.
    refcount_saving: float
    #: Section 3: fraction of hash accesses IC/HMI specialized away
    #: (the residual is what the hardware hash table serves).
    hash_specialized_fraction: float
    #: accelerator health metrics
    hash_hit_rate: float
    heap_hit_rate: float
    average_walk_uops: float

    @property
    def accel_benefit_total(self) -> float:
        """Total accelerator benefit relative to the optimized baseline."""
        return sum(self.benefits.values())


_CATEGORY_KEYS = {
    Activity.HASH: "hash",
    Activity.HEAP: "heap",
    Activity.STRING: "string",
    Activity.REGEX: "regex",
}


def run_app_experiment(
    app: AppWorkload,
    seed: int = DEFAULT_SEED,
    requests: int | None = None,
    costs: CostModel = DEFAULT_COSTS,
    hash_entries: int = 512,
) -> AppResult:
    """Simulate one application end to end (Figures 14/15, energy)."""
    rng = DeterministicRng(seed)
    profile = app.profile(rng.fork("profile"))
    optimized, remaining = apply_mitigations(profile)
    fractions = {
        _CATEGORY_KEYS[a]: optimized.category_share(a) for a in ACCELERATED
    }
    refcount_saving = (
        profile.category_share(Activity.REFCOUNT)
        - remaining * optimized.category_share(Activity.REFCOUNT)
    )

    # Identical traces for both modes: same seed, independent generators.
    complex_ = AcceleratorComplex(
        config=ComplexConfig(hash_table=HashTableConfig(entries=hash_entries))
    )
    sims_sw, sims_hw = _build_simulators(app, seed, costs, complex_)
    n_requests = requests if requests is not None else app.requests
    inliner = _drive(app, seed, n_requests, sims_sw)
    _drive(app, seed, n_requests, sims_hw)

    comparisons: dict[str, CategoryComparison] = {}
    for key in ("hash", "heap", "string", "regex"):
        comparisons[key] = CategoryComparison(
            software=sims_sw[key].finish(),
            accelerated=sims_hw[key].finish(),
        )

    benefits = {
        key: fractions[key] * comparisons[key].efficiency
        for key in fractions
    }
    time_with_accel = remaining * (1.0 - sum(benefits.values()))

    energy = _energy_saving(fractions, comparisons)

    return AppResult(
        app=app.name,
        time_with_priors=remaining,
        time_with_accelerators=time_with_accel,
        category_fractions=fractions,
        comparisons=comparisons,
        benefits=benefits,
        energy_saving=energy,
        regex_skip_fraction=sims_hw["regex"].skip_fraction(),
        refcount_saving=refcount_saving,
        hash_specialized_fraction=inliner.specialized_fraction(),
        hash_hit_rate=complex_.hash_table.hit_rate(),
        heap_hit_rate=complex_.heap_manager.hit_rate(),
        average_walk_uops=sims_sw["hash"].average_walk_uops(),
    )


def _build_simulators(
    app: AppWorkload,
    seed: int,
    costs: CostModel,
    complex_: AcceleratorComplex,
):
    def make(mode, cx):
        # map_base_address is a pure function of map_id, so both modes
        # can share the cached stream's generator.
        stream = TRACE_CACHE.stream(app, seed, warmup_requests=0)
        return {
            "hash": HashSimulator(mode, stream.hash_generator, costs, cx),
            "heap": HeapSimulator(mode, costs, cx),
            "string": StringSimulator(mode, costs, cx),
            "regex": RegexSimulator(mode, costs, cx),
        }

    return make("software", None), make("accelerated", complex_)


def _drive(app: AppWorkload, seed: int, n_requests: int, sims):
    """Feed ``n_requests`` of traffic to one mode's simulators.

    Hash ops first pass through the IC/HMI mitigation stage (§3):
    template accesses with literal/predictable keys are specialized to
    offset loads and never reach the hash map; both execution modes
    see the identical residual stream (the traffic the paper's
    hardware hash table is designed for).  Returns the inliner for
    specialization reporting.
    """
    from repro.optim.inline_cache import HashMapInliner

    stream = TRACE_CACHE.stream(app, seed, warmup_requests=0)
    inliner = HashMapInliner()
    for i in range(n_requests):
        trace = stream.trace(i)
        sims["hash"].execute(inliner.filter(trace.hash_ops))
        sims["heap"].execute(trace.alloc_ops)
        sims["string"].execute(trace.str_ops)
        sims["regex"].execute_sift(trace.sift_tasks)
        sims["regex"].execute_reuse(trace.reuse_tasks)
    return inliner


def _energy_saving(
    fractions: dict[str, float],
    comparisons: dict[str, CategoryComparison],
) -> float:
    """Section 5.2's proxy: dynamic-µop reduction + accelerator energy.

    The four simulated categories cover ``sum(fractions)`` of the
    optimized execution time; µops outside them are unchanged by the
    accelerators, so the app-wide totals scale the measured category
    µops by that coverage.
    """
    coverage = sum(fractions.values())
    uops_sw = sum(c.software.uops for c in comparisons.values())
    if uops_sw <= 0 or coverage <= 0:
        return 0.0
    # Dynamic-instruction reduction, weighted by each category's share
    # of execution time (µop density is uniform under the proxy).
    total_sw = uops_sw / coverage
    reduction = sum(
        fractions[key] * comparisons[key].uop_reduction
        for key in fractions
    )
    base = EnergyLedger(core_uops=int(total_sw))
    accel = EnergyLedger(core_uops=int(total_sw * (1.0 - reduction)))
    for c in comparisons.values():
        events = c.accelerated.events
        accel.hash_accesses += events.get("hash_accesses", 0)
        accel.heap_accesses += events.get("heap_accesses", 0)
        accel.string_blocks += events.get("string_blocks", 0)
        accel.reuse_accesses += events.get("reuse_accesses", 0)
    return energy_savings(base, accel)


# ---------------------------------------------------------------------------
# Figure-specific entry points
# ---------------------------------------------------------------------------


def leaf_distribution(seed: int = DEFAULT_SEED) -> dict[str, list[float]]:
    """Figure 1: cumulative cycle share over ranked leaf functions."""
    rng = DeterministicRng(seed)
    out: dict[str, list[float]] = {}
    for app in php_applications():
        out[app.name] = app.profile(rng.fork(app.name)).cumulative()
    for name in ("specweb-banking", "specweb-ecommerce"):
        out[name] = specweb_profile(name).cumulative()
    return out


@dataclass
class UarchResult:
    """Figure 2 and the Section 2 in-text rates for one app."""

    app: str
    branch_mpki: float
    btb_hit_rate_4k: float
    btb_hit_rate_64k: float
    l1i_mpki: float
    l1d_mpki: float
    l2_mpki: float
    core_sweep: dict[str, float] = field(default_factory=dict)
    btb_icache_sweep: dict[tuple[int, int], float] = field(default_factory=dict)


def uarch_characterization(
    app: AppWorkload,
    seed: int = DEFAULT_SEED,
    instructions: int = 200_000,
    full_sweeps: bool = False,
) -> UarchResult:
    """Figure 2 pipeline for one application's trace profile."""
    import dataclasses as _dc

    profile = _dc.replace(app.trace_profile, instructions=instructions)
    base = CharacterizationRun(profile, DeterministicRng(seed))
    counts = base.run(warmup_passes=2)
    big_btb = CharacterizationRun(
        profile, DeterministicRng(seed), btb_entries=65536
    )
    counts64 = big_btb.run(warmup_passes=2)

    result = UarchResult(
        app=app.name,
        branch_mpki=counts.branch_mpki,
        btb_hit_rate_4k=counts.btb_hit_rate,
        btb_hit_rate_64k=counts64.btb_hit_rate,
        l1i_mpki=counts.l1i_mpki,
        l1d_mpki=counts.l1d_mpki,
        l2_mpki=counts.l2_mpki,
    )
    if full_sweeps:
        result.core_sweep = sweep_cores(
            profile, DeterministicRng(seed),
            [CoreConfig.inorder_2(), CoreConfig.ooo(2),
             CoreConfig.ooo(4), CoreConfig.ooo(8)],
        )
        result.btb_icache_sweep = sweep_btb_and_icache(
            profile, DeterministicRng(seed),
            btb_sizes=[4096, 8192, 16384, 32768, 65536],
            icache_kb_sizes=[32, 64, 128],
        )
    return result


def mitigation_effect(
    app: AppWorkload, seed: int = DEFAULT_SEED
) -> tuple[Profile, Profile, float]:
    """Figure 3: (baseline profile, post-mitigation profile, remaining)."""
    profile = app.profile(DeterministicRng(seed).fork("profile"))
    optimized, remaining = apply_mitigations(profile)
    return profile, optimized, remaining


def categorization(app: AppWorkload, seed: int = DEFAULT_SEED) -> dict[str, float]:
    """Figure 4: post-mitigation share of the four target categories."""
    _, optimized, _ = mitigation_effect(app, seed)
    shares = {
        _CATEGORY_KEYS[a]: optimized.category_share(a) for a in ACCELERATED
    }
    shares["other"] = 1.0 - sum(shares.values())
    return shares


def post_mitigation_breakdown(seed: int = DEFAULT_SEED) -> dict[str, dict[str, float]]:
    """Figure 5: per-app execution-time breakdown after mitigation."""
    return {app.name: categorization(app, seed) for app in php_applications()}


def hash_hit_rate_sweep(
    app: AppWorkload,
    sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
    seed: int = DEFAULT_SEED,
    requests: int = 6,
) -> dict[int, float]:
    """Figure 7: hardware hash-table hit rate vs entry count."""
    out: dict[int, float] = {}
    stream = TRACE_CACHE.stream(app, seed, warmup_requests=0)
    traces = stream.traces(requests)
    for entries in sizes:
        complex_ = AcceleratorComplex(
            config=ComplexConfig(hash_table=HashTableConfig(entries=entries))
        )
        sim = HashSimulator(
            "accelerated", stream.hash_generator, DEFAULT_COSTS, complex_
        )
        for trace in traces:
            sim.execute(trace.hash_ops)
        out[entries] = complex_.hash_table.hit_rate()
    return out


def allocation_profile(
    app: AppWorkload, seed: int = DEFAULT_SEED, requests: int = 4
) -> tuple[HeapSimulator, list]:
    """Figure 8: run the allocation stream, sampling per-slab usage."""
    sim = HeapSimulator("software", DEFAULT_COSTS, sample_every=50)
    stream = TRACE_CACHE.stream(app, seed, warmup_requests=0)
    allocs = []
    for trace in stream.traces(requests):
        allocs.extend(trace.alloc_ops)
        sim.execute(trace.alloc_ops)
    sim.finish()
    return sim, allocs


def regex_opportunity(seed: int = DEFAULT_SEED, requests: int = 4) -> dict[str, float]:
    """Figure 12: skippable content fraction per application."""
    out: dict[str, float] = {}
    for app in php_applications():
        complex_ = AcceleratorComplex()
        sim = RegexSimulator("accelerated", DEFAULT_COSTS, complex_)
        stream = TRACE_CACHE.stream(app, seed, warmup_requests=0)
        for trace in stream.traces(requests):
            sim.execute_sift(trace.sift_tasks)
            sim.execute_reuse(trace.reuse_tasks)
        out[app.name] = sim.skip_fraction()
    return out


# The *_SET regex specs and DEFAULT_COSTS are frozen module constants
# (any change is a code change covered by expcache's CODE_SALT), and
# TRACE_CACHE serves streams keyed by (app, seed, warmup) — all
# deterministic functions of the keyed cell inputs below.
# repro: cache-key-covers(DEFAULT_COSTS, SANITIZE_SET, SHORTCODE_SET, TRACE_CACHE, WIKITEXT_SET, WPTEXTURIZE_SET)
def _evaluate_app_cell(cell: tuple[str, int, int | None]) -> AppResult:
    """Picklable sweep cell: one app's full experiment by name.

    Top-level so :func:`~repro.core.parallel.parallel_map` can ship it
    to worker processes; the app is looked up by name because
    AppWorkload carries generator specs that are cheaper to rebuild
    from the registry than to pickle.
    """
    name, seed, requests = cell
    app = next(a for a in php_applications() if a.name == name)
    return run_app_experiment(app, seed=seed, requests=requests)


def full_evaluation(
    seed: int = DEFAULT_SEED,
    requests: int | None = None,
    jobs: int | None = None,
) -> list[AppResult]:
    """Figures 14 + 15 for all three applications.

    ``jobs`` fans the per-app cells out over a process pool (argument >
    ``REPRO_JOBS`` env > 1); results are ordered by app regardless of
    job count, and repeated calls with the same (seed, requests) are
    served from :data:`~repro.core.expcache.EXPERIMENT_CACHE`.
    """
    from repro.core.expcache import EXPERIMENT_CACHE
    from repro.core.parallel import map_cells

    cells = [(app.name, seed, requests) for app in php_applications()]
    return map_cells(
        _evaluate_app_cell,
        cells,
        jobs=jobs,
        cache=EXPERIMENT_CACHE,
        key_parts=lambda cell: cell,
        label="full-evaluation",
    )
