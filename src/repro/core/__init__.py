"""Experiment harness: the paper's Sections 2, 3, and 5 as functions."""

from repro.core.ablation import AblationResult, run_ablations
from repro.core.costs import DEFAULT_COSTS, CostModel
from repro.core.export import (
    app_result_to_dict,
    evaluation_to_dict,
    save_evaluation_json,
)
from repro.core.latency import (
    LatencyDistribution,
    LatencyReport,
    percentile,
    request_latency_report,
)
from repro.core.throughput import (
    ThroughputResult,
    fleet_summary,
    throughput_analysis,
)
from repro.core.sensitivity import (
    sweep_probe_width,
    sweep_reuse_content_bytes,
    sweep_reuse_entries,
    sweep_segment_size,
)
from repro.core.execute import (
    CategoryRun,
    HashSimulator,
    HeapSimulator,
    RegexSimulator,
    StringSimulator,
)
from repro.core.experiment import (
    AppResult,
    CategoryComparison,
    UarchResult,
    allocation_profile,
    categorization,
    full_evaluation,
    hash_hit_rate_sweep,
    leaf_distribution,
    mitigation_effect,
    post_mitigation_breakdown,
    regex_opportunity,
    run_app_experiment,
    uarch_characterization,
)
from repro.core.expcache import (
    EXPERIMENT_CACHE,
    ExperimentCache,
    cache_key,
)
from repro.core.parallel import parallel_map, resolve_jobs
from repro.core.perf import run_perf, validate_perf_payload
from repro.core.report import (
    energy_report,
    figure14_report,
    figure15_report,
    format_table,
    pct,
    perf_observability_report,
    resilience_report,
)

__all__ = [
    "CostModel", "DEFAULT_COSTS",
    "AblationResult", "run_ablations",
    "sweep_probe_width", "sweep_segment_size",
    "sweep_reuse_content_bytes", "sweep_reuse_entries",
    "ThroughputResult", "throughput_analysis", "fleet_summary",
    "app_result_to_dict", "evaluation_to_dict", "save_evaluation_json",
    "LatencyDistribution", "LatencyReport", "percentile",
    "request_latency_report",
    "CategoryRun", "HashSimulator", "HeapSimulator",
    "StringSimulator", "RegexSimulator",
    "AppResult", "CategoryComparison", "UarchResult",
    "run_app_experiment", "full_evaluation",
    "leaf_distribution", "uarch_characterization", "mitigation_effect",
    "categorization", "post_mitigation_breakdown", "hash_hit_rate_sweep",
    "allocation_profile", "regex_opportunity",
    "figure14_report", "figure15_report", "energy_report",
    "resilience_report", "format_table", "pct",
    "EXPERIMENT_CACHE", "ExperimentCache", "cache_key",
    "parallel_map", "resolve_jobs",
    "run_perf", "validate_perf_payload", "perf_observability_report",
]
