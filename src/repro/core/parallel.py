"""Process-pool fan-out for experiment sweeps.

Shared-nothing parallelism over independent sweep cells: every cell is
a pure function of picklable inputs (app names, seeds, config
dataclasses), each worker process computes its cells in isolation, and
``ProcessPoolExecutor.map`` returns results in submission order — so
the output of a parallel sweep is positionally identical to the serial
one, and reports built from it are byte-identical at any job count.

``--jobs 1`` (the default) stays entirely in-process for
debuggability: no pool, no pickling, plain ``for`` loop.  The job
count resolves as: explicit argument > ``REPRO_JOBS`` environment
variable > 1.

Determinism-under-parallelism invariants (tested):

* cell functions take all inputs from their argument (no hidden
  global state besides deterministic module-level constructors);
* cell outputs must not depend on ``PYTHONHASHSEED``-salted ``hash()``
  (worker processes have different salts);
* result order is the input order, never completion order.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.common.stats import StatRegistry
from repro.core.expcache import ExperimentCache

#: Environment override for the default job count.
ENV_JOBS = "REPRO_JOBS"

#: Counters for sweep observability (pool vs inline task counts).
PARALLEL_STATS = StatRegistry("parallel")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: argument > ``REPRO_JOBS`` env > 1."""
    if jobs is None:
        env = os.environ.get(ENV_JOBS, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"{ENV_JOBS} must be an integer, got {env!r}"
                ) from None
    if jobs is None:
        jobs = 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: Optional[int] = None,
    cache: Optional[ExperimentCache] = None,
    key_fn: Optional[Callable[[Any], str]] = None,
) -> list[Any]:
    """Map ``fn`` over ``items`` with deterministic result ordering.

    With ``cache`` and ``key_fn``, cached cells are served without
    recomputation and fresh results are stored back — the cache lookup
    happens in the parent process, so only genuine misses are shipped
    to the pool.  ``fn`` must be a module-level (picklable) function
    when ``jobs > 1``.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    results: list[Any] = [None] * len(items)
    missing: list[int] = []
    keys: list[Optional[str]] = [None] * len(items)
    if cache is not None and key_fn is not None:
        for i, item in enumerate(items):
            key = key_fn(item)
            keys[i] = key
            hit, value = cache.lookup(key)
            if hit:
                results[i] = value
            else:
                missing.append(i)
    else:
        missing = list(range(len(items)))

    if not missing:
        return results

    if jobs <= 1 or len(missing) == 1:
        PARALLEL_STATS.bump("parallel.inline_tasks", len(missing))
        for i in missing:
            results[i] = fn(items[i])
    else:
        PARALLEL_STATS.bump("parallel.pools")
        PARALLEL_STATS.bump("parallel.pool_tasks", len(missing))
        workers = min(jobs, len(missing))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # executor.map yields in submission order: deterministic.
            for i, value in zip(missing, pool.map(fn, [items[i] for i in missing])):
                results[i] = value

    if cache is not None and key_fn is not None:
        for i in missing:
            cache.store(keys[i], results[i])
    return results


def map_cells(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[int] = None,
    cache: Optional[ExperimentCache] = None,
    key_parts: Optional[Callable[[Any], tuple]] = None,
    label: str = "",
) -> list[Any]:
    """:func:`parallel_map` with :func:`~repro.core.expcache.cache_key` keys.

    ``key_parts(item)`` returns the tuple of canonical inputs for the
    cell; ``label`` namespaces the key so different sweeps sharing an
    item shape never collide.
    """
    from repro.core.expcache import cache_key

    key_fn = None
    if cache is not None and key_parts is not None:
        def key_fn(item):
            return cache_key(label, *key_parts(item))
    return parallel_map(fn, items, jobs=jobs, cache=cache, key_fn=key_fn)
