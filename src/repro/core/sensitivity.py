"""Sensitivity sweeps over accelerator parameters.

Beyond the ablations (feature on/off), these sweeps trace how the key
results move as the paper's sizing constants change — the analysis a
design-space exploration would run before committing to 512 entries /
4 probes / 32-byte segments / 32-entry reuse tables.

Every sweep takes a ``jobs`` parameter and fans its cells out through
:func:`repro.core.parallel.map_cells`: each cell is a pure, picklable
function of its inputs, so results are byte-identical at any job
count.  ``sweep_reuse_entries`` is the one sweep whose cells are *not*
independent at generation time — each cell historically drew its URLs
from a corpus rng shared across cells — so the parent precomputes the
URL streams sequentially (preserving the exact draw order) and only
the matcher work is parallelized.
"""

from __future__ import annotations

from repro.accel.hash_table import HashTableConfig
from repro.accel.regex_accel import ContentSifter, ContentReuseTable, \
    ReuseAcceleratedMatcher, ReuseTableConfig
from repro.accel.string_accel import StringAccelerator
from repro.common.rng import DEFAULT_SEED, DeterministicRng
from repro.core.costs import DEFAULT_COSTS
from repro.core.execute import HashSimulator
from repro.core.expcache import EXPERIMENT_CACHE
from repro.core.parallel import map_cells
from repro.isa.dispatch import AcceleratorComplex, ComplexConfig
from repro.regex.engine import CompiledRegex
from repro.workloads.apps import AppWorkload, wordpress
from repro.workloads.loadgen import TRACE_CACHE
from repro.workloads.regexops import AUTHOR_URL_PATTERN
from repro.workloads.text import ContentSpec, TextCorpus


# DEFAULT_COSTS is a frozen constant (covered by expcache CODE_SALT);
# TRACE_CACHE serves streams keyed by (app, seed, warmup) — both are
# deterministic functions of the keyed cell inputs.
# repro: cache-key-covers(DEFAULT_COSTS, TRACE_CACHE)
def _probe_width_cell(cell: tuple[int, AppWorkload, int, int]) -> float:
    width, app, requests, seed = cell
    complex_ = AcceleratorComplex(config=ComplexConfig(
        hash_table=HashTableConfig(probe_width=width)
    ))
    stream = TRACE_CACHE.stream(app, seed, warmup_requests=0)
    sim = HashSimulator(
        "accelerated", stream.hash_generator, DEFAULT_COSTS, complex_
    )
    for trace in stream.traces(requests):
        sim.execute(trace.hash_ops)
    return complex_.hash_table.hit_rate()


def sweep_probe_width(
    widths: tuple[int, ...] = (1, 2, 4, 8),
    app: AppWorkload | None = None,
    requests: int = 3,
    seed: int = DEFAULT_SEED,
    jobs: int | None = None,
) -> dict[int, float]:
    """Hash-table hit rate vs parallel probe width (paper: 4)."""
    app = app or wordpress()
    cells = [(width, app, requests, seed) for width in widths]
    rates = map_cells(
        _probe_width_cell,
        cells,
        jobs=jobs,
        cache=EXPERIMENT_CACHE,
        key_parts=lambda cell: (cell[0], cell[1], cell[2], cell[3]),
        label="sweep-probe-width",
    )
    return dict(zip(widths, rates))


def _segment_size_cell(cell: tuple[int, str]) -> dict[str, float]:
    size, content = cell
    shadow = CompiledRegex(r"<[a-z]+")
    sifter = ContentSifter(StringAccelerator(), segment_bytes=size)
    hv, _ = sifter.build_hint_vector(content)
    result = sifter.shadow_findall(shadow, content, hv)
    return {
        "skip_fraction": result.chars_skipped / len(content),
        "hv_bits": float(len(hv.bits)),
    }


def sweep_segment_size(
    sizes: tuple[int, ...] = (8, 16, 32, 64, 128),
    special_fraction: float = 0.3,
    paragraphs: int = 12,
    seed: int = DEFAULT_SEED,
    jobs: int | None = None,
) -> dict[int, dict[str, float]]:
    """Content-sifting effectiveness vs hint-vector segment size.

    Small segments skip more precisely but cost more HV bits and more
    CLZ hops; large segments over-mark.  The paper picks 32 bytes.
    Returns per-size {skip_fraction, hv_bits}.
    """
    corpus = TextCorpus(DeterministicRng(seed))
    spec = ContentSpec(
        paragraphs=paragraphs, special_segment_fraction=special_fraction
    )
    content = corpus.post(spec)
    cells = [(size, content) for size in sizes]
    results = map_cells(
        _segment_size_cell,
        cells,
        jobs=jobs,
        cache=EXPERIMENT_CACHE,
        key_parts=lambda cell: (cell[0], special_fraction, paragraphs, seed),
        label="sweep-segment-size",
    )
    return dict(zip(sizes, results))


def _reuse_content_bytes_cell(cell: tuple[int, tuple[str, ...]]) -> float:
    size, urls = cell
    regex = CompiledRegex(AUTHOR_URL_PATTERN)
    table = ContentReuseTable(ReuseTableConfig(content_bytes=size))
    matcher = ReuseAcceleratedMatcher(table)
    skipped = 0
    total = 0
    for url in urls:
        outcome = matcher.match(regex, url, pc=0x42)
        skipped += outcome.chars_skipped
        total += len(url)
    return skipped / total if total else 0.0


def sweep_reuse_content_bytes(
    sizes: tuple[int, ...] = (8, 16, 32, 64),
    stream_length: int = 40,
    authors: int = 6,
    seed: int = DEFAULT_SEED,
    jobs: int | None = None,
) -> dict[int, float]:
    """Content-reuse skip rate vs memoized-content capacity.

    The author-URL prefix is 26 bytes: capacities below that truncate
    the shared prefix and skip less; the paper's 32 bytes covers it.
    """
    rng = DeterministicRng(seed)
    corpus = TextCorpus(rng.fork("corpus"))
    names = [corpus.rng.ascii_word(3, 7) for _ in range(authors)]
    urls = tuple(
        corpus.author_url(rng.choice(names)) for _ in range(stream_length)
    )
    cells = [(size, urls) for size in sizes]
    results = map_cells(
        _reuse_content_bytes_cell,
        cells,
        jobs=jobs,
        cache=EXPERIMENT_CACHE,
        key_parts=lambda cell: (cell[0], stream_length, authors, seed),
        label="sweep-reuse-content-bytes",
    )
    return dict(zip(sizes, results))


def _reuse_entries_cell(cell: tuple[int, tuple[tuple[int, str], ...]]) -> float:
    n, stream = cell
    regex = CompiledRegex(AUTHOR_URL_PATTERN)
    table = ContentReuseTable(ReuseTableConfig(entries=n))
    matcher = ReuseAcceleratedMatcher(table)
    for site, url in stream:
        matcher.match(regex, url, pc=0x100 + site)
    lookups = table.stats.get("reuse.lookups")
    return table.stats.get("reuse.jumps") / lookups if lookups else 0.0


def sweep_reuse_entries(
    entries: tuple[int, ...] = (2, 8, 32, 128),
    call_sites: int = 24,
    rounds: int = 6,
    seed: int = DEFAULT_SEED,
    jobs: int | None = None,
) -> dict[int, float]:
    """Reuse-table jump rate vs entry count under call-site pressure.

    With more live regexp call sites than entries, LRU churn destroys
    the memoized states; the paper sizes the table at 32.
    """
    rng = DeterministicRng(seed)
    corpus = TextCorpus(rng.fork("corpus"))
    author = corpus.rng.ascii_word(4, 6)
    # The URL streams draw sequentially from one shared corpus rng, so
    # cell n's inputs depend on every cell before it.  Precompute all
    # streams here, in entry order, replicating the historical draw
    # order exactly; only the matcher work fans out.
    streams: list[tuple[int, tuple[tuple[int, str], ...]]] = []
    for n in entries:
        stream: list[tuple[int, str]] = []
        for _ in range(rounds):
            for site in range(call_sites):
                other = corpus.rng.ascii_word(3, 7)
                url = corpus.author_url(author if site % 2 else other)
                stream.append((site, url))
        streams.append((n, tuple(stream)))
    results = map_cells(
        _reuse_entries_cell,
        streams,
        jobs=jobs,
        cache=EXPERIMENT_CACHE,
        key_parts=lambda cell: (cell[0], cell[1]),
        label="sweep-reuse-entries",
    )
    return dict(zip(entries, results))
