"""Sensitivity sweeps over accelerator parameters.

Beyond the ablations (feature on/off), these sweeps trace how the key
results move as the paper's sizing constants change — the analysis a
design-space exploration would run before committing to 512 entries /
4 probes / 32-byte segments / 32-entry reuse tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.hash_table import HashTableConfig
from repro.accel.regex_accel import ContentSifter, ContentReuseTable, \
    ReuseAcceleratedMatcher, ReuseTableConfig
from repro.accel.string_accel import StringAccelerator
from repro.common.rng import DEFAULT_SEED, DeterministicRng
from repro.core.costs import DEFAULT_COSTS
from repro.core.execute import HashSimulator
from repro.isa.dispatch import AcceleratorComplex, ComplexConfig
from repro.regex.engine import CompiledRegex
from repro.workloads.apps import AppWorkload, wordpress
from repro.workloads.loadgen import LoadGenerator
from repro.workloads.regexops import AUTHOR_URL_PATTERN
from repro.workloads.text import ContentSpec, TextCorpus


def sweep_probe_width(
    widths: tuple[int, ...] = (1, 2, 4, 8),
    app: AppWorkload | None = None,
    requests: int = 3,
    seed: int = DEFAULT_SEED,
) -> dict[int, float]:
    """Hash-table hit rate vs parallel probe width (paper: 4)."""
    app = app or wordpress()
    out: dict[int, float] = {}
    for width in widths:
        complex_ = AcceleratorComplex(config=ComplexConfig(
            hash_table=HashTableConfig(probe_width=width)
        ))
        lg = LoadGenerator(app, DeterministicRng(seed), warmup_requests=0)
        sim = HashSimulator(
            "accelerated", lg.hash_generator, DEFAULT_COSTS, complex_
        )
        for _ in range(requests):
            sim.execute(lg.next_request().hash_ops)
        out[width] = complex_.hash_table.hit_rate()
    return out


def sweep_segment_size(
    sizes: tuple[int, ...] = (8, 16, 32, 64, 128),
    special_fraction: float = 0.3,
    paragraphs: int = 12,
    seed: int = DEFAULT_SEED,
) -> dict[int, dict[str, float]]:
    """Content-sifting effectiveness vs hint-vector segment size.

    Small segments skip more precisely but cost more HV bits and more
    CLZ hops; large segments over-mark.  The paper picks 32 bytes.
    Returns per-size {skip_fraction, hv_bits}.
    """
    corpus = TextCorpus(DeterministicRng(seed))
    spec = ContentSpec(
        paragraphs=paragraphs, special_segment_fraction=special_fraction
    )
    content = corpus.post(spec)
    shadow = CompiledRegex(r"<[a-z]+")
    out: dict[int, dict[str, float]] = {}
    for size in sizes:
        sifter = ContentSifter(StringAccelerator(), segment_bytes=size)
        hv, _ = sifter.build_hint_vector(content)
        result = sifter.shadow_findall(shadow, content, hv)
        out[size] = {
            "skip_fraction": result.chars_skipped / len(content),
            "hv_bits": float(len(hv.bits)),
        }
    return out


def sweep_reuse_content_bytes(
    sizes: tuple[int, ...] = (8, 16, 32, 64),
    stream_length: int = 40,
    authors: int = 6,
    seed: int = DEFAULT_SEED,
) -> dict[int, float]:
    """Content-reuse skip rate vs memoized-content capacity.

    The author-URL prefix is 26 bytes: capacities below that truncate
    the shared prefix and skip less; the paper's 32 bytes covers it.
    """
    rng = DeterministicRng(seed)
    corpus = TextCorpus(rng.fork("corpus"))
    names = [corpus.rng.ascii_word(3, 7) for _ in range(authors)]
    urls = [
        corpus.author_url(rng.choice(names)) for _ in range(stream_length)
    ]
    regex = CompiledRegex(AUTHOR_URL_PATTERN)
    out: dict[int, float] = {}
    for size in sizes:
        table = ContentReuseTable(ReuseTableConfig(content_bytes=size))
        matcher = ReuseAcceleratedMatcher(table)
        skipped = 0
        total = 0
        for url in urls:
            outcome = matcher.match(regex, url, pc=0x42)
            skipped += outcome.chars_skipped
            total += len(url)
        out[size] = skipped / total if total else 0.0
    return out


def sweep_reuse_entries(
    entries: tuple[int, ...] = (2, 8, 32, 128),
    call_sites: int = 24,
    rounds: int = 6,
    seed: int = DEFAULT_SEED,
) -> dict[int, float]:
    """Reuse-table jump rate vs entry count under call-site pressure.

    With more live regexp call sites than entries, LRU churn destroys
    the memoized states; the paper sizes the table at 32.
    """
    rng = DeterministicRng(seed)
    corpus = TextCorpus(rng.fork("corpus"))
    author = corpus.rng.ascii_word(4, 6)
    regex = CompiledRegex(AUTHOR_URL_PATTERN)
    out: dict[int, float] = {}
    for n in entries:
        table = ContentReuseTable(ReuseTableConfig(entries=n))
        matcher = ReuseAcceleratedMatcher(table)
        for _ in range(rounds):
            for site in range(call_sites):
                other = corpus.rng.ascii_word(3, 7)
                url = corpus.author_url(author if site % 2 else other)
                matcher.match(regex, url, pc=0x100 + site)
        lookups = table.stats.get("reuse.lookups")
        out[n] = table.stats.get("reuse.jumps") / lookups if lookups else 0.0
    return out
