"""Accelerator area accounting (Section 5.1).

"The combined area overhead of the specialized hardware accelerators
is 0.22 mm².  An Intel Nehalem core (precursor to the Xeon core with
same fetch and issue width) measures 24.7 mm² including private L1 and
L2 caches.  If integrated into a Nehalem or Xeon-based core, our
proposed specialized hardware is merely 0.89% of the core area."

This module itemizes the four accelerators' storage structures using
the CACTI-like model and checks the budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.hash_table import HashTableConfig
from repro.accel.heap_manager import HeapManagerConfig
from repro.accel.regex_accel import ReuseTableConfig
from repro.accel.string_accel import StringAccelConfig
from repro.power.cacti import SramEstimate, estimate_sram

#: The paper's reference core area (Nehalem, incl. private L1+L2), mm².
NEHALEM_CORE_MM2 = 24.7
#: The paper's combined accelerator area, mm².
PAPER_ACCEL_MM2 = 0.22


@dataclass
class AreaReport:
    """Per-structure breakdown plus totals."""

    structures: list[SramEstimate]

    @property
    def total_mm2(self) -> float:
        return sum(s.area_mm2 for s in self.structures)

    @property
    def core_fraction(self) -> float:
        return self.total_mm2 / NEHALEM_CORE_MM2

    def rows(self) -> list[tuple[str, float]]:
        return [(s.name, s.area_mm2) for s in self.structures]


def accelerator_area_report(
    hash_config: HashTableConfig | None = None,
    heap_config: HeapManagerConfig | None = None,
    string_config: StringAccelConfig | None = None,
    reuse_config: ReuseTableConfig | None = None,
) -> AreaReport:
    """Estimate every accelerator storage structure."""
    hc = hash_config or HashTableConfig()
    pc = heap_config or HeapManagerConfig()
    sc = string_config or StringAccelConfig()
    rc = reuse_config or ReuseTableConfig()

    # Hash table entry: key (24 B), base address (8 B), value pointer
    # (8 B), timestamp (4 B), valid+dirty (2 b).
    hash_bits = (hc.max_key_bytes + 8 + 8 + 4) * 8 + 2
    # RTT entry: back-pointer buffer (10 b per pointer) + write pointer.
    rtt_bits = hc.rtt_pointers_per_map * 10 + 8
    # Heap manager: per-entry 8 B block pointer; plus the size-class
    # table (bounds + head/tail pointers).
    heap_entries = pc.size_classes * pc.entries_per_class
    # String accelerator: matrix configuration store + block buffers
    # (two blocks for wrap-around) — the compare logic itself is
    # combinational and folded into the overhead constant.
    string_bits_per_row = 8 + 8 + 2   # lo bound, hi bound, mode
    # Reuse table entry: PC (8 B), ASID (2 B), content (32 B), size
    # (1 B), FSM state (2 B), valid (1 b).
    reuse_bits = (8 + 2 + rc.content_bytes + 1 + 2) * 8 + 1

    structures = [
        estimate_sram("hash-table", hc.entries, hash_bits, ports=hc.probe_width // 2),
        estimate_sram("rtt", hc.rtt_maps, rtt_bits),
        estimate_sram("heap-free-lists", heap_entries, 64),
        estimate_sram("heap-size-class-table", pc.size_classes, 64),
        estimate_sram(
            "string-matrix-config",
            sc.pattern_rows, string_bits_per_row + sc.block_bytes * 2,
        ),
        estimate_sram("reuse-table", rc.entries, reuse_bits),
    ]
    return AreaReport(structures)
