"""McPAT-like core energy model.

Section 5.2: "We consider the reduction of dynamic CPU instructions
(after using our accelerators) as a simple proxy for estimating the
CPU energy savings.  We calculate total energy consumption of our
accelerators by using simulation counters of the cycles offloaded to
each accelerator, in combination with the accelerator energy numbers
provided by CACTI and Verilog synthesis."

This module implements exactly that accounting: core energy scales
with dynamic µops (a per-µop energy covering fetch/decode/execute/
retire and the cache slice), accelerator energy is events × per-access
energy from the CACTI-like model, and savings compare the two sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.power.cacti import estimate_sram

#: Core energy per dynamic µop (fetch through retire, 45 nm OoO), nJ.
NJ_PER_UOP = 0.35
#: Extra energy per data-cache access already folded into the µop cost;
#: the accelerators *save* some of these (hardware traversal), modeled
#: via their saved µops, so no separate term is needed here.

#: Per-access energies for accelerator events, pJ (CACTI-like).
_HASH_ACCESS_PJ = estimate_sram("hash", 512, 362, ports=2).read_energy_pj
_HEAP_ACCESS_PJ = estimate_sram("heap", 256, 64).read_energy_pj
_STRING_BLOCK_PJ = 6.5   # synthesized datapath, per 64-byte block
_REUSE_ACCESS_PJ = estimate_sram("reuse", 32, 361).read_energy_pj


@dataclass
class EnergyLedger:
    """Accumulates energy on both sides of a comparison."""

    core_uops: int = 0
    hash_accesses: int = 0
    heap_accesses: int = 0
    string_blocks: int = 0
    reuse_accesses: int = 0

    def add_core(self, uops: int) -> None:
        self.core_uops += uops

    def total_nj(self) -> float:
        accel_pj = (
            self.hash_accesses * _HASH_ACCESS_PJ
            + self.heap_accesses * _HEAP_ACCESS_PJ
            + self.string_blocks * _STRING_BLOCK_PJ
            + self.reuse_accesses * _REUSE_ACCESS_PJ
        )
        return self.core_uops * NJ_PER_UOP + accel_pj / 1000.0


def energy_savings(baseline: EnergyLedger, accelerated: EnergyLedger) -> float:
    """Fractional energy saving of the accelerated run."""
    base = baseline.total_nj()
    if base <= 0:
        return 0.0
    return 1.0 - accelerated.total_nj() / base
