"""Energy and area models (the CACTI/McPAT stand-ins of Section 5.1)."""

from repro.power.area import (
    AreaReport,
    NEHALEM_CORE_MM2,
    PAPER_ACCEL_MM2,
    accelerator_area_report,
)
from repro.power.cacti import SramEstimate, estimate_sram
from repro.power.mcpat import EnergyLedger, NJ_PER_UOP, energy_savings

__all__ = [
    "AreaReport",
    "accelerator_area_report",
    "NEHALEM_CORE_MM2",
    "PAPER_ACCEL_MM2",
    "SramEstimate",
    "estimate_sram",
    "EnergyLedger",
    "energy_savings",
    "NJ_PER_UOP",
]
