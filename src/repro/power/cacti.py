"""CACTI-like SRAM energy/latency/area estimation (45 nm).

The paper uses CACTI 6.5+ to size the non-synthesized accelerators and
McPAT for core power (Section 5.1).  This module provides an
analytical stand-in: energy and area scale with the array's bit count
(bitcell array) and its square root (wordline/bitline and peripheral
overheads), with constants chosen for a 45 nm process so that the four
accelerators together land at the paper's 0.22 mm² combined footprint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: 45 nm 6T SRAM bitcell + macro overhead, mm² per bit.
MM2_PER_BIT = 0.50e-6
#: Fixed peripheral area per array (decoders, sense amps), mm².
ARRAY_OVERHEAD_MM2 = 0.0015
#: Dynamic read/write energy: per-bit and per-sqrt(bit) terms, pJ.
PJ_PER_BIT = 0.00009
PJ_PER_SQRT_BIT = 0.011
PJ_FIXED = 0.45
#: Leakage, mW per mm² of array at 45 nm.
LEAKAGE_MW_PER_MM2 = 18.0


@dataclass(frozen=True)
class SramEstimate:
    """CACTI-style outputs for one SRAM structure."""

    name: str
    bits: int
    area_mm2: float
    read_energy_pj: float
    write_energy_pj: float
    latency_cycles: int
    leakage_mw: float


def estimate_sram(name: str, entries: int, bits_per_entry: int,
                  ports: int = 1) -> SramEstimate:
    """Estimate one array; multi-ported arrays pay quadratic-ish area.

    ``latency_cycles`` is at the paper's 2 GHz clock: small accelerator
    arrays are single-cycle, larger ones two.
    """
    if entries <= 0 or bits_per_entry <= 0:
        raise ValueError("entries and bits_per_entry must be positive")
    bits = entries * bits_per_entry
    port_factor = 1.0 + 0.6 * (ports - 1)
    area = bits * MM2_PER_BIT * port_factor + ARRAY_OVERHEAD_MM2
    read = PJ_FIXED + bits_per_entry * PJ_PER_BIT * 8 + math.sqrt(bits) * PJ_PER_SQRT_BIT
    write = read * 1.15
    latency = 1 if bits <= 64 * 1024 else 2
    leakage = area * LEAKAGE_MW_PER_MM2
    return SramEstimate(
        name=name, bits=bits, area_mm2=area,
        read_energy_pj=read, write_energy_pj=write,
        latency_cycles=latency, leakage_mw=leakage,
    )
