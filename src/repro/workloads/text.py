"""Synthetic textual content: the data PHP applications actually chew on.

Section 4.3/4.4/4.5 describe the content pipeline of the three
applications: "large volumes of unstructured textual data (such as
social media updates, web documents, blog posts, news articles, and
system logs)" that get turned into HTML via string functions and
regexps.  This module synthesizes that content with explicit control
over the property every regexp accelerator result depends on — the
density of *special characters* (Section 4.5 classifies
``{A-Za-z0-9_.,-}`` as regular, everything else as special) — plus
URL/tag/attribute structure for the content-reuse scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import DeterministicRng

#: Segment granularity used by content sifting hint vectors.
SEGMENT_BYTES = 32

#: Special characters that texturize-class regexps hunt for
#: (apostrophe, double quote, newline, angle brackets — Figure 11).
TEXTURIZE_SPECIALS = "'\"\n<"

_WORD_SEEDS = (
    "server side php processing web application content request "
    "template database theme plugin filter cache page post user "
    "comment article revision module node wiki category tag index "
    "profile session token query render output buffer handler engine"
).split()


@dataclass
class ContentSpec:
    """Recipe for one piece of post/article content.

    ``special_segment_fraction`` controls what fraction of 32-byte
    segments contain at least one special character: this is exactly
    (1 − the content a sieve regexp lets shadows skip), the paper's
    Figure 12 opportunity metric.
    """

    paragraphs: int = 4
    words_per_paragraph: int = 60
    special_segment_fraction: float = 0.35
    quote_probability: float = 0.5
    tag_probability: float = 0.3
    newline_probability: float = 0.4


class TextCorpus:
    """Deterministic generator of blog/wiki-flavoured content."""

    def __init__(self, rng: DeterministicRng) -> None:
        self.rng = rng

    # -- low-level pieces -------------------------------------------------------

    def word(self) -> str:
        if self.rng.random() < 0.75:
            return self.rng.choice(_WORD_SEEDS)
        return self.rng.ascii_word(3, 9)

    def slug(self, words: int = 3) -> str:
        return "-".join(self.word() for _ in range(words))

    def author_url(self, author: str, host: str = "localhost") -> str:
        """The Section 4.5 content-reuse example URL shape."""
        return f"https://{host}/?author={author}"

    def html_tag(self, name: str | None = None) -> str:
        """An HTML tag with a couple of attributes."""
        name = name or self.rng.choice(["a", "em", "strong", "span", "div", "img"])
        attrs = []
        for _ in range(self.rng.randint(0, 2)):
            attrs.append(f'{self.word()}="{self.word()}-{self.rng.randint(1, 99)}"')
        inner = " " + " ".join(attrs) if attrs else ""
        return f"<{name}{inner}>"

    def shortcode(self) -> str:
        """A WordPress-style ``[shortcode attr=value]``."""
        return f"[{self.word()} {self.word()}={self.rng.randint(1, 50)}]"

    # -- paragraph/post assembly ---------------------------------------------------

    def paragraph(self, spec: ContentSpec) -> str:
        """One paragraph honouring the special-segment density."""
        rng = self.rng
        pieces: list[str] = []
        length = 0
        specials_pending = False
        next_special_check = SEGMENT_BYTES
        while len(pieces) < spec.words_per_paragraph:
            word = self.word()
            pieces.append(word)
            length += len(word) + 1
            if length >= next_special_check:
                next_special_check += SEGMENT_BYTES
                if rng.random() < spec.special_segment_fraction:
                    specials_pending = True
            if specials_pending:
                specials_pending = False
                roll = rng.random()
                if roll < spec.quote_probability * 0.5:
                    pieces.append(f"'{self.word()}'")
                elif roll < spec.quote_probability:
                    pieces.append(f'"{self.word()}"')
                elif roll < spec.quote_probability + spec.tag_probability:
                    pieces.append(self.html_tag())
                else:
                    pieces.append(self.word() + "\n")
        # Join with spaces; regular-character punctuation sprinkled in.
        out: list[str] = []
        for i, piece in enumerate(pieces):
            out.append(piece)
            if piece.endswith("\n"):
                continue
            if i + 1 < len(pieces):
                out.append(", " if self.rng.random() < 0.08 else " ")
        text = "".join(out)
        return text.rstrip() + "."

    def post(self, spec: ContentSpec) -> str:
        """A multi-paragraph post/article body."""
        return "\n\n".join(self.paragraph(spec) for _ in range(spec.paragraphs))

    def clean_text(self, words: int = 80) -> str:
        """Content with *no* special characters (fully siftable)."""
        parts: list[str] = []
        for i in range(words):
            parts.append(self.word())
            if i + 1 < words:
                parts.append(", " if self.rng.random() < 0.1 else " ")
        return "".join(parts)

    def log_line(self) -> str:
        """A system-log-ish line (string-function workload fodder)."""
        return (
            f"{self.rng.randint(10, 31)}/Jun/2017 "
            f"{self.word()}.php req={self.rng.randint(1000, 9999)} "
            f"path=/{self.slug(2)} status={self.rng.choice([200, 200, 200, 404, 301])}"
        )


def special_char_segments(text: str, segment: int = SEGMENT_BYTES) -> list[bool]:
    """Per-segment "contains a special character" flags.

    This is the ground truth the string accelerator's hint-vector
    generation must reproduce; tests compare the two.
    """
    from repro.regex.charset import REGULAR_CHARS

    flags: list[bool] = []
    for start in range(0, len(text), segment):
        chunk = text[start:start + segment]
        flags.append(any(not REGULAR_CHARS.contains(c) for c in chunk))
    return flags
