"""Discrete-event web-server model: latency vs offered load.

The paper's introduction argues fleet economics: "even small
improvements in performance or utilization will translate into immense
cost savings."  Execution-time ratios understate what operators see —
queueing turns a 30 % service-time reduction into a much larger tail-
latency gap near saturation, or equivalently more load served at an
SLO.  This module provides a small discrete-event simulator (Poisson
arrivals, ``workers`` parallel servers, FIFO queue) fed by the
per-request service-time distributions the simulators produce.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.common.rng import DeterministicRng
from repro.common.stats import percentile


@dataclass
class ServedRequest:
    """One completed request's timeline (all times in cycles)."""

    arrival: float
    start: float
    finish: float

    @property
    def latency(self) -> float:
        return self.finish - self.arrival

    @property
    def queueing(self) -> float:
        return self.start - self.arrival


@dataclass
class ServerConfig:
    """Shape of the simulated server."""

    workers: int = 4
    #: simulation length in requests
    requests: int = 2_000

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(
                f"need at least one worker, got workers={self.workers}"
            )
        if self.requests < 1:
            raise ValueError(
                f"need at least one request, got requests={self.requests}"
            )


class WebServerSimulator:
    """M/G/c FIFO queue over an empirical service-time distribution."""

    def __init__(
        self,
        service_times: list[float],
        config: ServerConfig | None = None,
        rng: DeterministicRng | None = None,
    ) -> None:
        if not service_times:
            raise ValueError("need a service-time sample")
        if any(s <= 0 for s in service_times):
            raise ValueError("service times must be positive")
        self.service_times = service_times
        self.config = config or ServerConfig()
        self.rng = rng or DeterministicRng(17)

    def mean_service(self) -> float:
        return sum(self.service_times) / len(self.service_times)

    def capacity_rps(self) -> float:
        """Saturation throughput (requests per cycle × workers)."""
        return self.config.workers / self.mean_service()

    def run(self, offered_load: float) -> list[ServedRequest]:
        """Simulate at ``offered_load`` (fraction of capacity).

        Poisson arrivals at ``offered_load × capacity``; service times
        sampled i.i.d. from the empirical distribution.  Returns one
        record per served request.
        """
        if not math.isfinite(offered_load) or offered_load <= 0.0:
            raise ValueError(
                f"offered load must be positive and finite, got "
                f"{offered_load}"
            )
        cfg = self.config
        arrival_rate = offered_load * self.capacity_rps()
        mean_gap = 1.0 / arrival_rate

        # Worker free-at times as (time, seq) min-heap entries.  The
        # monotonic sequence number breaks equal-time ties in push
        # order, so the pop sequence — and therefore every downstream
        # sample — is a function of the seed alone, never of how the
        # heap happens to sift equal floats.
        workers = [(0.0, i) for i in range(cfg.workers)]
        heapq.heapify(workers)
        seq = cfg.workers
        served: list[ServedRequest] = []
        now = 0.0
        for _ in range(cfg.requests):
            # Exponential inter-arrival (inverse-CDF on a uniform).
            now += -mean_gap * math.log(max(self.rng.random(), 1e-12))
            service = self.rng.choice(self.service_times)
            free_at, _ = heapq.heappop(workers)
            start = max(now, free_at)
            finish = start + service
            heapq.heappush(workers, (finish, seq))
            seq += 1
            served.append(ServedRequest(now, start, finish))
        return served


@dataclass
class LoadPoint:
    """Latency summary at one offered load."""

    offered_load: float
    mean_latency: float
    p99_latency: float
    mean_queueing: float


def latency_curve(
    service_times: list[float],
    loads: tuple[float, ...] = (0.3, 0.5, 0.7, 0.8, 0.9),
    config: ServerConfig | None = None,
    seed: int = 17,
) -> list[LoadPoint]:
    """Latency vs offered load for one service-time distribution."""
    points: list[LoadPoint] = []
    for load in loads:
        sim = WebServerSimulator(
            service_times, config, DeterministicRng(seed)
        )
        served = sim.run(load)
        latencies = [r.latency for r in served]
        queueing = [r.queueing for r in served]
        points.append(LoadPoint(
            offered_load=load,
            mean_latency=sum(latencies) / len(latencies),
            p99_latency=percentile(latencies, 99),
            mean_queueing=sum(queueing) / len(queueing),
        ))
    return points


def slo_capacity(
    service_times: list[float],
    slo_latency: float,
    config: ServerConfig | None = None,
    seed: int = 17,
    resolution: float = 0.05,
    max_load: float = 0.96,
) -> float:
    """Highest offered load whose p99 stays under ``slo_latency``.

    Scans load upward in ``resolution`` steps up to ``max_load`` — the
    operator's "how hot can I run this tier" number.  The scan stops
    early once the p99 exceeds the SLO at two *consecutive* loads:
    queueing delay grows monotonically with offered load in
    expectation, so once the tier is persistently over its SLO it does
    not come back.  (A single exceedance is not trusted — finite-run
    sampling noise can push one load point over the line — which is
    why two consecutive misses are required before exiting.)
    """
    if resolution <= 0:
        raise ValueError(f"resolution must be positive, got {resolution}")
    if not 0.0 < max_load <= 1.0:
        raise ValueError(f"max_load must be in (0, 1], got {max_load}")
    best = 0.0
    load = resolution
    consecutive_misses = 0
    while load < max_load:
        sim = WebServerSimulator(service_times, config, DeterministicRng(seed))
        latencies = [r.latency for r in sim.run(load)]
        if percentile(latencies, 99) <= slo_latency:
            best = load
            consecutive_misses = 0
        else:
            consecutive_misses += 1
            if consecutive_misses >= 2:
                break
        load += resolution
    return best
