"""Regular-expression workload: sieve/shadow sets and reuse streams.

Two Section 4.5 structures are generated here:

1. **Consecutive regexp sets** — "The PHP applications process the
   same unstructured textual content through a series of several
   regexps during their execution" (Figure 11 shows four consecutive
   texturize regexps all hunting special characters).  Each
   :class:`RegexFunctionSet` is such a series: the first pattern is
   the *sieve*, the rest are *shadows*.

2. **Near-duplicate content streams** — "they sometimes scan URLs of
   two author names with only the name field (last field) in them
   changing from 'abc' to 'xyz'" — the content-reuse opportunity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.common.rng import DeterministicRng
from repro.workloads.text import ContentSpec, TextCorpus


@dataclass(frozen=True)
class RegexFunctionSet:
    """A PHP function that applies consecutive regexps to one content.

    ``patterns[0]`` acts as the sieve; ``patterns[1:]`` are shadows.
    ``mutating`` marks replace-style sets whose rewrites trigger the
    whitespace-padding realignment described in Section 4.5.
    """

    name: str
    patterns: tuple[str, ...]
    mutating: bool = False


@dataclass(frozen=True)
class SiftTask:
    """One invocation of a regexp function set over one content."""

    function_set: RegexFunctionSet
    content: str


@dataclass(frozen=True)
class ReuseTask:
    """Anchored scans over a stream of nearly-identical contents."""

    pattern: str
    pc: int          # call-site identity (reuse table index key)
    contents: tuple[str, ...]


#: Texturize-style set modeled on the paper's Figure 11: four regexps
#: over the same content, each seeking a special character (apostrophe,
#: double quote, newline, opening angle bracket).
WPTEXTURIZE_SET = RegexFunctionSet(
    name="wptexturize",
    patterns=(
        r"'[A-Za-z]",          # apostrophe before a word (curly-quote lhs)
        r"\"[A-Za-z]",         # double quote before a word
        r"\n",                 # newline → <br /> conversion sites
        r"<[a-z][a-z]*",       # opening HTML tag
    ),
    mutating=True,
)

#: Shortcode scanner set (WordPress do_shortcode pipeline).
SHORTCODE_SET = RegexFunctionSet(
    name="do_shortcode",
    patterns=(
        r"\[[a-z]+",                       # sieve: any opening shortcode
        r"\[[a-z]+ [a-z]+=[0-9]+\]",       # full shortcode with attribute
        r"\[/[a-z]+\]",                    # closing shortcode
    ),
    mutating=False,
)

#: Sanitizer set (esc_html/kses-style passes).
SANITIZE_SET = RegexFunctionSet(
    name="wp_kses",
    patterns=(
        r"[<>&]",                          # sieve: any markup metachar
        r"<[a-z]+[^>]*>",                  # tags with attributes
        r"&[a-z]+;",                       # existing entities
    ),
    mutating=True,
)

#: MediaWiki-style wikitext link/emphasis scanners.
WIKITEXT_SET = RegexFunctionSet(
    name="mw_parse_inline",
    patterns=(
        r"\[\[",                           # sieve: internal link opener
        r"\[\[[A-Za-z ]+\]\]",             # full internal link
        r"''",                             # emphasis marker
        r"==+",                            # heading marker
    ),
    mutating=False,
)

#: The anchored author-URL pattern of the content-reuse example.
AUTHOR_URL_PATTERN = r"https://[a-z]+/\?author=[a-z]+"


@dataclass
class RegexWorkloadSpec:
    """Shape of one application's regexp traffic."""

    #: function sets exercised by this application
    function_sets: tuple[RegexFunctionSet, ...] = (
        WPTEXTURIZE_SET, SHORTCODE_SET, SANITIZE_SET,
    )
    #: sift tasks (content × function-set applications) per request
    sift_tasks_per_request: int = 6
    #: content shape (its special-segment density sets skippability)
    content: ContentSpec | None = None
    #: reuse streams per request
    reuse_tasks_per_request: int = 2
    #: contents per reuse stream (e.g. author links on an index page)
    reuse_stream_length: int = 12
    #: number of distinct authors cycled through reuse streams
    reuse_population: int = 5


class RegexOpGenerator:
    """Generates per-request sift and reuse tasks."""

    def __init__(self, spec: RegexWorkloadSpec, rng: DeterministicRng) -> None:
        self.spec = spec
        self.rng = rng
        self.corpus = TextCorpus(rng.fork("regex-corpus"))
        self._content = spec.content or ContentSpec()
        self._authors = [self.corpus.rng.ascii_word(3, 7)
                         for _ in range(spec.reuse_population)]

    def sift_tasks(self) -> Iterator[SiftTask]:
        """Consecutive-regexp applications for one request."""
        for _ in range(self.spec.sift_tasks_per_request):
            function_set = self.rng.choice(self.spec.function_sets)
            content = self.corpus.post(self._content)
            yield SiftTask(function_set, content)

    def reuse_tasks(self) -> Iterator[ReuseTask]:
        """Near-duplicate URL scans for one request.

        Author-archive URLs share everything up to the author name; a
        reuse stream interleaves a handful of authors, exactly the
        'abc' → 'xyz' example of Section 4.5.
        """
        for site in range(self.spec.reuse_tasks_per_request):
            contents = []
            for _ in range(self.spec.reuse_stream_length):
                author = self.rng.choice(self._authors)
                contents.append(self.corpus.author_url(author))
            yield ReuseTask(
                pattern=AUTHOR_URL_PATTERN,
                pc=0x77_0000 + site * 0x40,
                contents=tuple(contents),
            )
