"""String-function operation traces.

Section 4.4: "These PHP applications exercise a variety of string
copying, matching, and modifying functions to turn large volumes of
unstructured textual data ... into appropriate HTML format.  ...
These tasks include string finding, matching, replacing, trimming,
comparing, etc."

The generator below produces the operation mix of that pipeline:
HTML-tag assembly (concatenation of attribute fragments), escaping,
case normalization, trimming user input, smart-quote translation,
substring finds, and log-line parsing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.common.rng import DeterministicRng
from repro.workloads.text import ContentSpec, TextCorpus


@dataclass(frozen=True)
class StrOp:
    """One string-library call."""

    func: str                    # library entry point name
    subject: str                 # primary string operand
    pattern: str = ""            # needle / search / char set
    replacement: str = ""        # for replace/translate
    parts: tuple[str, ...] = ()  # for concat


@dataclass
class StringWorkloadSpec:
    """Shape of one application's string traffic."""

    #: string ops per request
    ops_per_request: int = 160
    #: relative weights of each operation family
    mix: dict[str, float] | None = None
    #: content shape for subjects
    content: ContentSpec | None = None

    def resolved_mix(self) -> dict[str, float]:
        return self.mix or {
            "concat_tag": 0.26,
            "htmlspecialchars": 0.14,
            "strpos": 0.16,
            "replace": 0.12,
            "tolower": 0.08,
            "toupper": 0.03,
            "trim": 0.09,
            "translate": 0.05,
            "substr": 0.04,
            "strcmp": 0.03,
        }


#: The smart-quote translation map texturize-style passes apply.
SMART_QUOTE_MAP = {"'": "’", '"': "”"}


class StrOpGenerator:
    """Generates per-request string-op streams."""

    def __init__(self, spec: StringWorkloadSpec, rng: DeterministicRng) -> None:
        self.spec = spec
        self.rng = rng
        self.corpus = TextCorpus(rng.fork("str-corpus"))
        self._content = spec.content or ContentSpec()

    def request_ops(self) -> Iterator[StrOp]:
        mix = self.spec.resolved_mix()
        families = list(mix)
        weights = [mix[f] for f in families]
        for _ in range(self.spec.ops_per_request):
            family = self.rng.weighted_choice(families, weights)
            yield self._make_op(family)

    # -- op construction ------------------------------------------------------------

    def _make_op(self, family: str) -> StrOp:
        corpus = self.corpus
        rng = self.rng
        if family == "concat_tag":
            # Assemble an HTML tag from attribute fragments (Section 4.3's
            # "concatenating those values to form the overall formatted tag").
            name = rng.choice(["a", "div", "span", "img", "li"])
            parts = [f"<{name}"]
            for _ in range(rng.randint(1, 4)):
                parts.append(f' {corpus.word()}="{corpus.word()}"')
            parts.append(">")
            return StrOp("concat", "", parts=tuple(parts))
        if family == "htmlspecialchars":
            return StrOp("htmlspecialchars", corpus.paragraph(self._content))
        if family == "strpos":
            subject = corpus.paragraph(self._content)
            needle = rng.choice(["http", "<", corpus.word(), "[", "&"])
            return StrOp("strpos", subject, pattern=needle)
        if family == "replace":
            subject = corpus.paragraph(self._content)
            return StrOp(
                "replace", subject,
                pattern=rng.choice(["\n", "  ", "--", corpus.word()]),
                replacement=rng.choice(["<br />", " ", "—", corpus.word()]),
            )
        if family == "tolower":
            return StrOp("tolower", corpus.word().upper() + corpus.slug(2).upper())
        if family == "toupper":
            return StrOp("toupper", corpus.slug(2))
        if family == "trim":
            pad_left = " " * rng.randint(0, 6)
            pad_right = " \t" * rng.randint(0, 3)
            return StrOp("trim", pad_left + corpus.word() + pad_right)
        if family == "translate":
            return StrOp(
                "translate", corpus.paragraph(self._content),
                pattern="".join(SMART_QUOTE_MAP),
                replacement="".join(SMART_QUOTE_MAP.values()),
            )
        if family == "substr":
            subject = corpus.log_line()
            return StrOp("substr", subject,
                         pattern=str(rng.randint(0, max(1, len(subject) // 2))))
        if family == "strcmp":
            a = corpus.slug(2)
            b = a if rng.random() < 0.4 else corpus.slug(2)
            return StrOp("strcmp", a, pattern=b)
        raise ValueError(f"unknown string-op family {family!r}")
