"""Hash-map operation traces.

Section 4.2 describes the access pattern the hardware hash table
targets: "these real-world applications often tend to exercise hash
maps in their execution environment with dynamic key names", mostly
via *short-lived* maps — symbol tables populated by ``extract``,
scope-communication tables, the regexp manager's pattern→FSM map —
with two quantitative anchors:

* SET share of 15–25 % ("relatively higher percentage of SET requests
  ... when generating dynamic contents"), and
* about 95 % of keys at most 24 bytes long.

The generator below produces an operation stream with those
properties: a churn of short-lived maps (alloc → dynamic-key SETs →
GETs → optional ``foreach`` → free) interleaved with accesses to a set
of long-lived global tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.common.rng import DeterministicRng


@dataclass(frozen=True)
class HashOp:
    """One hash-map operation in a trace."""

    kind: str        # 'alloc' | 'get' | 'set' | 'unset' | 'foreach' | 'free'
    map_id: int
    key: str = ""
    #: for foreach: how many entries iteration will visit
    entries: int = 0


@dataclass
class HashWorkloadSpec:
    """Shape of one application's hash-map traffic."""

    #: short-lived map churn events per request
    short_lived_maps: int = 12
    #: key/value pairs imported into a short-lived map (extract size)
    pairs_per_map: tuple[int, int] = (4, 14)
    #: GET lookups per short-lived map after population
    gets_per_map: tuple[int, int] = (14, 44)
    #: probability a short-lived map is iterated with foreach before free
    foreach_probability: float = 0.25
    #: number of long-lived global tables
    global_tables: int = 6
    #: distinct keys per global table
    global_keys: int = 400
    #: Zipf exponent of global key popularity
    global_key_zipf_s: float = 0.9
    #: global accesses per request
    global_accesses: int = 90
    #: fraction of global accesses that are SETs
    global_set_fraction: float = 0.1
    #: fraction of keys longer than 24 bytes (paper: about 5 %)
    long_key_fraction: float = 0.05
    #: template reads with *literal* keys per request — the accesses
    #: inline caching / hash map inlining specialize away (§3); the
    #: hardware hash table only ever sees the residual dynamic traffic
    literal_config_reads: int = 40
    #: distinct literal keys in the config table
    literal_config_keys: int = 10


class HashOpGenerator:
    """Generates per-request hash-op streams for a workload spec."""

    GLOBAL_BASE = 0x6000_0000
    SHORT_BASE = 0x6800_0000

    def __init__(self, spec: HashWorkloadSpec, rng: DeterministicRng) -> None:
        self.spec = spec
        self.rng = rng
        self._next_short_id = 1
        # Pre-generate the global tables' key universes.
        key_rng = rng.fork("global-keys")
        self._global_keys: list[list[str]] = [
            [self._make_key(key_rng) for _ in range(spec.global_keys)]
            for _ in range(spec.global_tables)
        ]
        # The config table's literal keys, read in a fixed template
        # order every request (wp_options-style).
        config_rng = rng.fork("config-keys")
        self._config_keys = [
            config_rng.ascii_word(5, 12) for _ in range(spec.literal_config_keys)
        ]

    def _make_key(self, rng: DeterministicRng) -> str:
        """Dynamic key with the paper's length distribution."""
        if rng.random() < self.spec.long_key_fraction:
            length = rng.randint(25, 48)
        else:
            length = rng.randint(4, 24)
        word = rng.ascii_word(3, 8)
        suffix = f"_{rng.randint(0, 9999)}"
        base = (word + suffix) * 4
        return base[:length]

    def map_base_address(self, map_id: int) -> int:
        """Simulated base address of a map structure (hash-table input)."""
        if map_id < 0:
            return self.GLOBAL_BASE + (-map_id) * 0x200
        return self.SHORT_BASE + (map_id % 0x10000) * 0x200

    # -- stream ------------------------------------------------------------------------

    #: map_id of the literal-key config table (wp_options-style)
    CONFIG_MAP_ID = -999

    def request_ops(self) -> Iterator[HashOp]:
        """All hash ops of one HTTP request, interleaved realistically."""
        spec = self.spec
        rng = self.rng
        # Template prologue: literal config reads in a fixed order —
        # exactly the accesses IC/HMI specialize to offset loads.
        for i in range(spec.literal_config_reads):
            key = self._config_keys[i % len(self._config_keys)]
            yield HashOp("get", self.CONFIG_MAP_ID, key)
        # Interleave short-lived map churn with global-table traffic.
        global_budget = spec.global_accesses
        for _ in range(spec.short_lived_maps):
            yield from self._short_lived_map()
            # A slice of global accesses between map lifetimes.
            slice_n = max(1, global_budget // spec.short_lived_maps)
            for _ in range(slice_n):
                yield self._global_access()
        for _ in range(global_budget % spec.short_lived_maps):
            yield self._global_access()

    def _short_lived_map(self) -> Iterator[HashOp]:
        spec = self.spec
        rng = self.rng
        map_id = self._next_short_id
        self._next_short_id += 1
        yield HashOp("alloc", map_id)
        pairs = rng.randint(*spec.pairs_per_map)
        keys = [self._make_key(rng) for _ in range(pairs)]
        for key in keys:
            yield HashOp("set", map_id, key)
        gets = rng.randint(*spec.gets_per_map)
        for _ in range(gets):
            # Lookups concentrate on the recently-imported symbols.
            key = keys[rng.zipf(len(keys), 1.1)]
            yield HashOp("get", map_id, key)
            # Occasionally a value is rebound (template variable update).
            if rng.random() < 0.06:
                yield HashOp("set", map_id, key)
        if rng.random() < spec.foreach_probability:
            yield HashOp("foreach", map_id, entries=pairs)
        yield HashOp("free", map_id)

    def _global_access(self) -> HashOp:
        spec = self.spec
        rng = self.rng
        table = rng.randint(0, spec.global_tables - 1)
        map_id = -(table + 1)
        keys = self._global_keys[table]
        key = keys[rng.zipf(len(keys), spec.global_key_zipf_s)]
        kind = "set" if rng.random() < spec.global_set_fraction else "get"
        return HashOp(kind, map_id, key)


def trace_statistics(ops: list[HashOp]) -> dict[str, float]:
    """Summary facts a trace must satisfy (validated in tests).

    Returns the SET share among GET+SET and the fraction of keys that
    fit in 24 bytes — the two Section 4.2 anchors.
    """
    gets = sum(1 for op in ops if op.kind == "get")
    sets = sum(1 for op in ops if op.kind == "set")
    keys = [op.key for op in ops if op.kind in ("get", "set")]
    short = sum(1 for k in keys if len(k) <= 24)
    return {
        "set_share": sets / (gets + sets) if gets + sets else 0.0,
        "short_key_fraction": short / len(keys) if keys else 0.0,
        "ops": float(len(ops)),
    }
