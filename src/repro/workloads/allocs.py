"""Memory allocation/deallocation traces.

Section 4.3's two empirical anchors drive this generator:

1. "a majority of the allocation and deallocation requests retrieve at
   most 128 bytes" (Figure 8a's cumulative distribution), and
2. "these applications exhibit strong memory reuse": HTML-tag assembly
   allocates small string buffers and recycles them as soon as the tag
   is emitted, so live memory in the four smallest slabs stays *flat*
   over time (Figures 8b/8c).

The generator models both: a churning population of short-lived small
objects (tag/attribute strings, zval buffers) over a bounded working
set, plus a slow trickle of longer-lived, larger allocations
(request-lifetime arenas, compiled artifacts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.common.rng import DeterministicRng


@dataclass(frozen=True)
class AllocOp:
    """One heap-manager request."""

    kind: str      # 'malloc' | 'free'
    size: int = 0  # malloc only
    tag: int = 0   # identity linking a free to its malloc


@dataclass
class AllocWorkloadSpec:
    """Shape of one application's allocation traffic."""

    #: small-object churn events per request
    churn_events: int = 400
    #: size buckets for small objects with selection weights
    #: (Figure 8a: ≤128 B dominates; 32 B steps)
    small_sizes: tuple[tuple[int, int, float], ...] = (
        (8, 32, 0.38),
        (33, 64, 0.26),
        (65, 96, 0.12),
        (97, 128, 0.09),
    )
    #: weight of medium objects (129–512 B)
    medium_weight: float = 0.10
    #: weight of large objects (513–4096 B)
    large_weight: float = 0.05
    #: mean lifetime of a small object, in subsequent churn events
    small_lifetime_mean: float = 6.0
    #: fraction of objects that live to the end of the request
    request_lifetime_fraction: float = 0.04


class AllocOpGenerator:
    """Generates per-request allocation-op streams."""

    def __init__(self, spec: AllocWorkloadSpec, rng: DeterministicRng) -> None:
        self.spec = spec
        self.rng = rng
        self._next_tag = 1

    def _sample_size(self) -> int:
        spec = self.spec
        rng = self.rng
        small_total = sum(w for _, _, w in spec.small_sizes)
        total = small_total + spec.medium_weight + spec.large_weight
        roll = rng.random() * total
        acc = 0.0
        for lo, hi, w in spec.small_sizes:
            acc += w
            if roll < acc:
                return rng.randint(lo, hi)
        acc += spec.medium_weight
        if roll < acc:
            return rng.randint(129, 512)
        return rng.randint(513, 4096)

    def request_ops(self) -> Iterator[AllocOp]:
        """All allocation ops of one HTTP request.

        Short-lived objects are freed after a geometric number of
        subsequent events (strong reuse); request-lifetime objects are
        all freed in the teardown burst at the end, as a request-scoped
        VM heap would.
        """
        spec = self.spec
        rng = self.rng
        #: (die_at_event, tag) pending frees, kept sorted by discipline of use
        pending: list[tuple[int, int]] = []
        request_scoped: list[int] = []
        p_die = 1.0 / spec.small_lifetime_mean

        for event in range(spec.churn_events):
            # Release everything whose lifetime expired.
            due = [t for (when, t) in pending if when <= event]
            if due:
                pending = [(when, t) for (when, t) in pending if when > event]
                for tag in due:
                    yield AllocOp("free", tag=tag)
            size = self._sample_size()
            tag = self._next_tag
            self._next_tag += 1
            yield AllocOp("malloc", size=size, tag=tag)
            if rng.random() < spec.request_lifetime_fraction:
                request_scoped.append(tag)
            else:
                lifetime = 1 + rng.geometric(p_die, cap=200)
                pending.append((event + lifetime, tag))

        # Teardown: everything still live dies with the request.
        for _, tag in pending:
            yield AllocOp("free", tag=tag)
        for tag in request_scoped:
            yield AllocOp("free", tag=tag)


def size_fraction_at_or_below(ops: list[AllocOp], threshold: int) -> float:
    """Fraction of malloc requests at or below ``threshold`` bytes."""
    sizes = [op.size for op in ops if op.kind == "malloc"]
    if not sizes:
        return 0.0
    return sum(1 for s in sizes if s <= threshold) / len(sizes)
