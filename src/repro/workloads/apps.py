"""Per-application workload definitions (WordPress, Drupal, MediaWiki,
SPECWeb2005).

Each :class:`AppWorkload` bundles everything the experiments need to
know about one application:

* its CPU :class:`~repro.uarch.trace.TraceProfile` (Section 2 rates:
  branch MPKI 17.26 / 14.48 / 15.14 under a 32 KB TAGE),
* its leaf-function category mix (Figures 1/3/4/5),
* the specs for its hash / alloc / string / regexp operation streams
  (Section 4 inputs).

The category-mix numbers are calibration constants transcribed from
the paper's figures (Figure 5's post-mitigation breakdown, Figure 14's
per-app bars); the *dynamics* — hit rates, skip rates, reuse rates,
µops — all come out of simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.rng import DeterministicRng
from repro.uarch.trace import SPEC_LIKE_PROFILE, TraceProfile
from repro.workloads.allocs import AllocWorkloadSpec
from repro.workloads.hashops import HashWorkloadSpec
from repro.workloads.profiles import (
    Activity,
    Profile,
    flat_php_profile,
    hotspot_profile,
)
from repro.workloads.regexops import (
    RegexWorkloadSpec,
    SANITIZE_SET,
    SHORTCODE_SET,
    WIKITEXT_SET,
    WPTEXTURIZE_SET,
)
from repro.workloads.strops import StringWorkloadSpec
from repro.workloads.text import ContentSpec


@dataclass
class AppWorkload:
    """Everything the experiment harness needs about one application."""

    name: str
    trace_profile: TraceProfile
    #: leaf-function category mix of the *unmodified HHVM* baseline
    #: (fractions of total execution time; sums to 1.0)
    baseline_mix: dict[Activity, float]
    hash_spec: HashWorkloadSpec
    alloc_spec: AllocWorkloadSpec
    string_spec: StringWorkloadSpec
    regex_spec: RegexWorkloadSpec
    #: requests per measurement run (scaled-down oss-performance window)
    requests: int = 20
    #: leaf functions in the flat profile (Figure 1 tail length)
    profile_functions: int = 260
    #: Zipf decay of the non-JIT tail (Figure 1 flatness)
    profile_tail_s: float = 0.45

    def profile(self, rng: DeterministicRng) -> Profile:
        """The Figure-1-shaped leaf-function profile of this app."""
        return flat_php_profile(
            self.name, rng, self.baseline_mix,
            function_count=self.profile_functions,
            tail_zipf_s=self.profile_tail_s,
        )


def _mix(
    hash_: float, heap: float, string: float, regex: float,
    refcount: float, typecheck: float, ic: float, kernel: float,
    jit: float = 0.11,
) -> dict[Activity, float]:
    """Assemble a baseline category mix; 'other' absorbs the remainder."""
    known = hash_ + heap + string + regex + refcount + typecheck + ic + kernel + jit
    if known >= 1.0:
        raise ValueError("category mix exceeds 1.0")
    return {
        Activity.JIT: jit,
        Activity.HASH: hash_,
        Activity.HEAP: heap,
        Activity.STRING: string,
        Activity.REGEX: regex,
        Activity.REFCOUNT: refcount,
        Activity.TYPECHECK: typecheck,
        Activity.IC_DISPATCH: ic,
        Activity.KERNEL_ALLOC: kernel,
        Activity.OTHER: 1.0 - known,
    }


def wordpress() -> AppWorkload:
    """WordPress: blogging platform; the richest regexp/string user.

    Paper anchors: branch MPKI 17.26; largest energy gain (−26.06 %);
    "WordPress observes considerable benefit from the regexp
    accelerator."
    """
    return AppWorkload(
        name="wordpress",
        trace_profile=TraceProfile(
            name="wordpress", data_dependent_fraction=0.068, ilp=2.9,
        ),
        # Post-mitigation targets (fractions of optimized time):
        # hash .092, heap .088, string .077, regex .082 — scaled here to
        # the unmodified baseline (× remaining 0.87).
        baseline_mix=_mix(
            hash_=0.0901, heap=0.0862, string=0.0563, regex=0.0868,
            refcount=0.055, typecheck=0.035, ic=0.050, kernel=0.033,
        ),
        hash_spec=HashWorkloadSpec(
            short_lived_maps=14, pairs_per_map=(5, 14), gets_per_map=(16, 44),
            global_set_fraction=0.10,
        ),
        alloc_spec=AllocWorkloadSpec(churn_events=420),
        string_spec=StringWorkloadSpec(
            ops_per_request=170,
            content=ContentSpec(special_segment_fraction=0.32),
        ),
        regex_spec=RegexWorkloadSpec(
            function_sets=(WPTEXTURIZE_SET, SHORTCODE_SET, SANITIZE_SET),
            sift_tasks_per_request=7,
            content=ContentSpec(special_segment_fraction=0.32),
            reuse_tasks_per_request=3,
        ),
        profile_functions=272,
        profile_tail_s=0.43,
    )


def drupal() -> AppWorkload:
    """Drupal: CMS; the least accelerator opportunity.

    Paper anchors: branch MPKI 14.48; least benefit ("Drupal shows the
    least opportunity, and naturally benefits less"); energy −16.75 %;
    high content skippability that "does not translate into
    performance gain, as it does not spend much time either in regexp
    processing or in string functions."
    """
    return AppWorkload(
        name="drupal",
        trace_profile=TraceProfile(
            name="drupal", data_dependent_fraction=0.038, ilp=2.8,
        ),
        # Post-mitigation targets: hash .076, heap .082, string .040,
        # regex .010 (× remaining 0.90).
        baseline_mix=_mix(
            hash_=0.0841, heap=0.0834, string=0.0304, regex=0.0119,
            refcount=0.048, typecheck=0.028, ic=0.036, kernel=0.020,
        ),
        hash_spec=HashWorkloadSpec(
            short_lived_maps=11, pairs_per_map=(4, 12), gets_per_map=(18, 48),
            global_set_fraction=0.08,
        ),
        alloc_spec=AllocWorkloadSpec(churn_events=380),
        string_spec=StringWorkloadSpec(
            ops_per_request=90,
            content=ContentSpec(special_segment_fraction=0.38),
        ),
        regex_spec=RegexWorkloadSpec(
            function_sets=(SANITIZE_SET, SHORTCODE_SET),
            sift_tasks_per_request=2,
            content=ContentSpec(special_segment_fraction=0.38),
            reuse_tasks_per_request=1,
        ),
        profile_functions=238,
        profile_tail_s=0.48,
    )


def mediawiki() -> AppWorkload:
    """MediaWiki: wiki engine; heavy wikitext string processing.

    Paper anchors: branch MPKI 15.14; energy −19.81 %; "MediaWiki
    obtains modest benefit" from the regexp accelerator.
    """
    return AppWorkload(
        name="mediawiki",
        trace_profile=TraceProfile(
            name="mediawiki", data_dependent_fraction=0.046, ilp=2.85,
        ),
        # Post-mitigation targets: hash .087, heap .087, string .091,
        # regex .026 (× remaining 0.875).
        baseline_mix=_mix(
            hash_=0.0910, heap=0.0855, string=0.0669, regex=0.0296,
            refcount=0.053, typecheck=0.032, ic=0.044, kernel=0.039,
        ),
        hash_spec=HashWorkloadSpec(
            short_lived_maps=13, pairs_per_map=(4, 13), gets_per_map=(14, 40),
            global_set_fraction=0.12,
        ),
        alloc_spec=AllocWorkloadSpec(churn_events=440),
        string_spec=StringWorkloadSpec(
            ops_per_request=200,
            content=ContentSpec(special_segment_fraction=0.40),
        ),
        regex_spec=RegexWorkloadSpec(
            function_sets=(WIKITEXT_SET, SANITIZE_SET),
            sift_tasks_per_request=4,
            content=ContentSpec(special_segment_fraction=0.40),
            reuse_tasks_per_request=2,
        ),
        profile_functions=254,
        profile_tail_s=0.455,
    )


def specweb_banking() -> AppWorkload:
    """SPECWeb2005 banking: the hotspot-shaped micro-benchmark foil."""
    return AppWorkload(
        name="specweb-banking",
        trace_profile=SPEC_LIKE_PROFILE,
        baseline_mix=_mix(
            hash_=0.01, heap=0.02, string=0.02, regex=0.0,
            refcount=0.01, typecheck=0.01, ic=0.01, kernel=0.01, jit=0.6,
        ),
        hash_spec=HashWorkloadSpec(short_lived_maps=2, global_accesses=10),
        alloc_spec=AllocWorkloadSpec(churn_events=60),
        string_spec=StringWorkloadSpec(ops_per_request=20),
        regex_spec=RegexWorkloadSpec(
            function_sets=(SANITIZE_SET,), sift_tasks_per_request=1,
            reuse_tasks_per_request=0,
        ),
    )


def specweb_ecommerce() -> AppWorkload:
    """SPECWeb2005 e-commerce: second hotspot-shaped foil."""
    app = specweb_banking()
    app.name = "specweb-ecommerce"
    return app


def php_applications() -> list[AppWorkload]:
    """The paper's three evaluation targets, in its order."""
    return [wordpress(), drupal(), mediawiki()]


def specweb_profile(name: str) -> Profile:
    """Figure-1 hotspot profile for the SPECWeb workloads."""
    return hotspot_profile(name)
