"""Leaf-function execution profiles (Figures 1, 3, and 4).

Figure 1 contrasts two profile shapes:

* **SPECWeb2005** — "significant hotspots — with very few functions
  responsible for about 90% of their execution time";
* **real-world PHP apps** — "very flat execution profiles — the
  hottest single function (JIT compiled code) is responsible for only
  10–12% of cycles, and they take about 100 functions to account for
  about 65% of cycles."

This module synthesizes named leaf-function profiles with those
shapes, assigns each function an activity category (the raw material
for Figure 4's categorization and Figure 3's before/after bars), and
implements the Section 3 re-weighting when the four mitigations are
applied.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.rng import DeterministicRng


class Activity(enum.Enum):
    """What a leaf function spends its time doing."""

    JIT = "jit-compiled code"
    HASH = "hash map access"
    HEAP = "heap management"
    STRING = "string manipulation"
    REGEX = "regular expression processing"
    REFCOUNT = "reference counting"
    TYPECHECK = "dynamic type checking"
    IC_DISPATCH = "inline-cache dispatch"
    KERNEL_ALLOC = "kernel memory calls"
    OTHER = "other VM runtime"


#: The four categories the accelerators target (Figure 4's color coding).
ACCELERATED = (Activity.HASH, Activity.HEAP, Activity.STRING, Activity.REGEX)

#: Categories that the Section 3 prior-work mitigations shrink, with the
#: fraction of each category's time the mitigation removes.
MITIGATION_FACTORS: dict[Activity, float] = {
    Activity.REFCOUNT: 0.85,     # hardware reference counting [46]
    Activity.TYPECHECK: 0.80,    # checked-load type checks [22]
    Activity.IC_DISPATCH: 0.70,  # inline caching + hash map inlining [31,32,40]
    Activity.KERNEL_ALLOC: 0.60, # allocation tuning (fewer kernel calls)
}

_FUNCTION_STEMS: dict[Activity, list[str]] = {
    Activity.JIT: ["JIT::translated_code"],
    Activity.HASH: [
        "HPHP::MixedArray::GetStr", "HPHP::MixedArray::SetStr",
        "HPHP::MixedArray::find", "HPHP::HashTable::findForInsert",
        "HPHP::ArrayData::releaseWrapper", "HPHP::MixedArray::NextInsert",
        "HPHP::ExecutionContext::lookupVar", "HPHP::extract_impl",
    ],
    Activity.HEAP: [
        "HPHP::MemoryManager::mallocSmallSize",
        "HPHP::MemoryManager::freeSmallSize",
        "HPHP::MemoryManager::newSlab", "HPHP::tl_heap_alloc",
        "je_malloc", "je_free", "HPHP::StringData::MakeUncounted",
    ],
    Activity.STRING: [
        "HPHP::StringData::append", "HPHP::string_replace",
        "HPHP::f_strtolower", "HPHP::f_trim", "HPHP::f_strpos",
        "HPHP::f_htmlspecialchars", "HPHP::concat_ss", "memcpy_sse",
        "HPHP::f_substr", "HPHP::f_strtr",
    ],
    Activity.REGEX: [
        "pcre_exec", "php_pcre_replace", "HPHP::preg_match_impl",
        "HPHP::preg_replace_impl", "pcre_study",
    ],
    Activity.REFCOUNT: [
        "HPHP::tv_decref", "HPHP::tv_incref", "HPHP::decRefObj",
        "HPHP::StringData::release",
    ],
    Activity.TYPECHECK: [
        "HPHP::tvCheckType", "HPHP::checkTypeHint", "HPHP::VerifyParamType",
    ],
    Activity.IC_DISPATCH: [
        "HPHP::SmashableCall::dispatch", "HPHP::funcPrologue",
        "HPHP::MethodCache::lookup",
    ],
    Activity.KERNEL_ALLOC: ["madvise", "mmap_region", "page_fault"],
    Activity.OTHER: [
        "HPHP::ExecutionContext::invokeFunc", "HPHP::unserialize",
        "HPHP::f_json_encode", "HPHP::VariableSerializer::serialize",
        "HPHP::Unit::lookupFunc", "HPHP::ObjectData::newInstance",
        "HPHP::c_Collator::compare", "HPHP::zend_hash_func",
        "libc::memmove", "HPHP::req_root",
    ],
}


@dataclass(frozen=True)
class LeafFunction:
    """One profile row: a named function, its category, its weight."""

    name: str
    activity: Activity
    weight: float  # fraction of total cycles


@dataclass
class Profile:
    """An execution-time profile over leaf functions (sums to 1.0)."""

    workload: str
    functions: list[LeafFunction]

    def __post_init__(self) -> None:
        total = sum(f.weight for f in self.functions)
        if not 0.999 <= total <= 1.001:
            raise ValueError(f"profile weights sum to {total}, expected 1.0")

    def sorted_weights(self) -> list[float]:
        return sorted((f.weight for f in self.functions), reverse=True)

    def cumulative(self) -> list[float]:
        """Cumulative cycle share over functions, hottest first (Fig 1)."""
        out: list[float] = []
        acc = 0.0
        for w in self.sorted_weights():
            acc += w
            out.append(acc)
        return out

    def hottest_share(self) -> float:
        return self.sorted_weights()[0]

    def top_n_share(self, n: int) -> float:
        return sum(self.sorted_weights()[:n])

    def category_share(self, activity: Activity) -> float:
        return sum(f.weight for f in self.functions if f.activity is activity)

    def category_breakdown(self) -> dict[Activity, float]:
        return {a: self.category_share(a) for a in Activity}

    def four_category_share(self) -> float:
        """Time in the four accelerator-targeted categories (Fig 4)."""
        return sum(self.category_share(a) for a in ACCELERATED)


def _names_for(activity: Activity, count: int) -> list[str]:
    stems = _FUNCTION_STEMS[activity]
    names = []
    for i in range(count):
        stem = stems[i % len(stems)]
        suffix = "" if i < len(stems) else f"_{i // len(stems)}"
        names.append(stem + suffix)
    return names


def flat_php_profile(
    workload: str,
    rng: DeterministicRng,
    category_mix: dict[Activity, float],
    function_count: int = 260,
    jit_share: float = 0.11,
    tail_zipf_s: float = 0.45,
) -> Profile:
    """A Figure-1-shaped flat profile.

    The hottest entry is the JIT-compiled code at ``jit_share``; the
    remaining weight spreads over ``function_count`` leaf functions
    with a gentle Zipf decay so ~100 functions ≈ 65 % of cycles.
    ``category_mix`` apportions the non-JIT weight across activities
    (it need not sum to 1; it is normalized).
    """
    mix = {a: v for a, v in category_mix.items() if a is not Activity.JIT and v > 0}
    total_mix = sum(mix.values())
    # Zipf tail weights for the non-JIT functions.
    raw = [1.0 / ((i + 1) ** tail_zipf_s) for i in range(function_count)]
    raw_total = sum(raw)
    tail_weight = 1.0 - jit_share
    weights = [tail_weight * r / raw_total for r in raw]

    # Deal activities onto the ranked functions so every category gets a
    # spread of hot and cold members (interleaved proportional dealing).
    activities = list(mix)
    quotas = {a: mix[a] / total_mix * tail_weight for a in activities}
    spent = {a: 0.0 for a in activities}
    counts = {a: 0 for a in activities}
    functions = [LeafFunction("JIT::translated_code", Activity.JIT, jit_share)]
    for w in weights:
        # Pick the activity lagging most behind its quota.
        lagging = max(activities, key=lambda a: quotas[a] - spent[a])
        spent[lagging] += w
        counts[lagging] += 1
        functions.append(LeafFunction("", lagging, w))
    # Assign names per category now that counts are known.
    name_pools = {a: iter(_names_for(a, counts[a])) for a in activities}
    named = [functions[0]]
    for f in functions[1:]:
        named.append(LeafFunction(next(name_pools[f.activity]), f.activity, f.weight))
    return Profile(workload, named)


def hotspot_profile(workload: str, hot_functions: int = 5,
                    hot_share: float = 0.9, tail_functions: int = 40) -> Profile:
    """A SPECWeb2005-shaped profile: few functions ≈ 90 % of time."""
    functions: list[LeafFunction] = []
    hot_names = [
        "specweb::request_dispatch", "specweb::session_lookup",
        "specweb::render_template", "specweb::db_query", "specweb::md5",
    ]
    raw = [1.0 / (i + 1) for i in range(hot_functions)]
    raw_total = sum(raw)
    for i in range(hot_functions):
        functions.append(
            LeafFunction(hot_names[i % len(hot_names)], Activity.JIT,
                         hot_share * raw[i] / raw_total)
        )
    tail_each = (1.0 - hot_share) / tail_functions
    for i in range(tail_functions):
        functions.append(
            LeafFunction(f"specweb::helper_{i}", Activity.OTHER, tail_each)
        )
    return Profile(workload, functions)


def apply_mitigations(profile: Profile) -> tuple[Profile, float]:
    """Section 3: shrink the mitigated categories, keep absolute time.

    Returns ``(new_profile, remaining_time)`` where ``remaining_time``
    is the post-mitigation execution time as a fraction of the
    original (the Figure 14 "w/ prior optimizations" bar), and the new
    profile's weights are re-normalized fractions of that remaining
    time (the Figure 3 right-hand bar).
    """
    new_weights: list[tuple[LeafFunction, float]] = []
    for f in profile.functions:
        factor = 1.0 - MITIGATION_FACTORS.get(f.activity, 0.0)
        new_weights.append((f, f.weight * factor))
    remaining = sum(w for _, w in new_weights)
    functions = [
        LeafFunction(f.name, f.activity, w / remaining) for f, w in new_weights
    ]
    return Profile(profile.workload, functions), remaining
