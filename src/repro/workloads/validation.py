"""Workload fidelity validation.

The synthetic workloads stand in for WordPress/Drupal/MediaWiki, so
every distributional fact the paper states about the real applications
is encoded here as a checkable *anchor*.  ``validate_app`` measures a
workload against all of them and returns a scorecard — run by tests,
printable as the "workload card" bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import DEFAULT_SEED, DeterministicRng
from repro.workloads.allocs import size_fraction_at_or_below
from repro.workloads.apps import AppWorkload
from repro.workloads.hashops import trace_statistics
from repro.workloads.loadgen import LoadGenerator
from repro.workloads.profiles import apply_mitigations
from repro.workloads.text import special_char_segments


@dataclass(frozen=True)
class Anchor:
    """One checkable distributional fact from the paper."""

    name: str
    source: str          # where the paper states it
    measured: float
    low: float
    high: float

    @property
    def ok(self) -> bool:
        return self.low <= self.measured <= self.high


def validate_app(
    app: AppWorkload,
    requests: int = 4,
    seed: int = DEFAULT_SEED,
) -> list[Anchor]:
    """Measure one application's generators against every anchor."""
    rng = DeterministicRng(seed)
    lg = LoadGenerator(app, rng, warmup_requests=0)
    traces = [lg.next_request() for _ in range(requests)]

    hash_ops = [op for t in traces for op in t.hash_ops]
    alloc_ops = [op for t in traces for op in t.alloc_ops]
    hash_stats = trace_statistics(hash_ops)

    contents = [task.content for t in traces for task in t.sift_tasks]
    segment_flags = [
        flag for content in contents
        for flag in special_char_segments(content)
    ]
    special_density = (
        sum(segment_flags) / len(segment_flags) if segment_flags else 0.0
    )

    profile = app.profile(rng.fork("profile"))
    optimized, remaining = apply_mitigations(profile)

    anchors = [
        Anchor(
            "branch fraction", "§2: ~22% of instructions are branches",
            app.trace_profile.branch_fraction, 0.18, 0.26,
        ),
        Anchor(
            "SET share", "§4.2: 15–25% of hash requests are SETs",
            hash_stats["set_share"], 0.14, 0.27,
        ),
        Anchor(
            "keys ≤ 24 B", "§4.2: about 95% of keys fit 24 bytes",
            hash_stats["short_key_fraction"], 0.90, 1.0,
        ),
        Anchor(
            "allocations ≤ 128 B", "§4.3/Fig 8a: small objects dominate",
            size_fraction_at_or_below(alloc_ops, 128), 0.72, 0.95,
        ),
        Anchor(
            "special-segment density",
            "§4.5/Fig 12: most content segments are skippable",
            special_density, 0.15, 0.60,
        ),
        Anchor(
            "hottest function share", "Fig 1: JIT code ≈ 10–12%",
            profile.hottest_share(), 0.09, 0.13,
        ),
        Anchor(
            "top-100 function share", "Fig 1: ~100 functions ≈ 65%",
            profile.top_n_share(100), 0.55, 0.72,
        ),
        Anchor(
            "post-mitigation time", "§5.2: prior opts leave ≈ 88.15%",
            remaining, 0.85, 0.92,
        ),
        Anchor(
            "four-category share",
            "Fig 4/5: the accelerated categories dominate many leaves",
            optimized.four_category_share(), 0.13, 0.45,
        ),
    ]
    return anchors


def fidelity_failures(anchors: list[Anchor]) -> list[Anchor]:
    return [a for a in anchors if not a.ok]
