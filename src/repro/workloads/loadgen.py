"""oss-performance-style load generation.

Section 5.1: "We used the load generator available with the
oss-performance suite to generate client requests.  The load generator
emulates load from a large pool of client clusters ... It generates
300 warmup requests, then as many requests as possible in next one
minute."

This module reproduces that request-driven structure at simulation
scale: a :class:`LoadGenerator` produces per-request operation bundles
(hash ops, allocation ops, string ops, regexp tasks) for a workload,
split into a warmup phase (structures learn; statistics discarded) and
a measurement phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.rng import DeterministicRng
from repro.workloads.allocs import AllocOp, AllocOpGenerator
from repro.workloads.apps import AppWorkload
from repro.workloads.hashops import HashOp, HashOpGenerator
from repro.workloads.regexops import RegexOpGenerator, ReuseTask, SiftTask
from repro.workloads.strops import StrOp, StrOpGenerator


@dataclass
class RequestTrace:
    """All runtime operations of one simulated HTTP request."""

    index: int
    is_warmup: bool
    hash_ops: list[HashOp] = field(default_factory=list)
    alloc_ops: list[AllocOp] = field(default_factory=list)
    str_ops: list[StrOp] = field(default_factory=list)
    sift_tasks: list[SiftTask] = field(default_factory=list)
    reuse_tasks: list[ReuseTask] = field(default_factory=list)

    @property
    def op_count(self) -> int:
        return (
            len(self.hash_ops) + len(self.alloc_ops) + len(self.str_ops)
            + len(self.sift_tasks) + len(self.reuse_tasks)
        )


@dataclass(frozen=True)
class TraceSummary:
    """Warmup/measurement split of a generated trace.

    Resilience and availability statistics must be computed over the
    measured phase only — the warmup phase exists so hardware
    structures can learn, and its failures/latencies are not the
    tier's steady-state behavior.  This summary makes the split
    explicit for any consumer of :meth:`LoadGenerator.run`.
    """

    warmup_requests: int
    measured_requests: int
    warmup_ops: int
    measured_ops: int

    @property
    def total_requests(self) -> int:
        return self.warmup_requests + self.measured_requests


class LoadGenerator:
    """Streams request traces for one application workload.

    Parameters
    ----------
    app:
        The application definition.
    rng:
        Deterministic seed source; all request content derives from it.
    warmup_requests:
        Requests generated before measurement begins.  The paper uses
        300; the default here is scaled down with the trace sizes (the
        simulated structures are warm after a handful of requests —
        tests assert this).
    """

    def __init__(
        self,
        app: AppWorkload,
        rng: DeterministicRng,
        warmup_requests: int = 5,
    ) -> None:
        if warmup_requests < 0:
            raise ValueError(
                f"warmup_requests cannot be negative, got {warmup_requests}"
            )
        self.app = app
        self.rng = rng
        self.warmup_requests = warmup_requests
        self._hash_gen = HashOpGenerator(app.hash_spec, rng.fork("hash"))
        self._alloc_gen = AllocOpGenerator(app.alloc_spec, rng.fork("alloc"))
        self._str_gen = StrOpGenerator(app.string_spec, rng.fork("str"))
        self._regex_gen = RegexOpGenerator(app.regex_spec, rng.fork("regex"))
        self._issued = 0

    @property
    def hash_generator(self) -> HashOpGenerator:
        """Exposed so consumers can map map_ids to base addresses."""
        return self._hash_gen

    def next_request(self) -> RequestTrace:
        """Generate the next request's full operation bundle."""
        index = self._issued
        self._issued += 1
        trace = RequestTrace(
            index=index,
            is_warmup=index < self.warmup_requests,
            hash_ops=list(self._hash_gen.request_ops()),
            alloc_ops=list(self._alloc_gen.request_ops()),
            str_ops=list(self._str_gen.request_ops()),
            sift_tasks=list(self._regex_gen.sift_tasks()),
            reuse_tasks=list(self._regex_gen.reuse_tasks()),
        )
        return trace

    def run(self, measured_requests: int | None = None) -> list[RequestTrace]:
        """Warmup + measurement: returns all traces, flagged."""
        measured = (
            measured_requests if measured_requests is not None
            else self.app.requests
        )
        return [
            self.next_request()
            for _ in range(self.warmup_requests + measured)
        ]

    @staticmethod
    def summarize(traces: list[RequestTrace]) -> TraceSummary:
        """Warmup/measured split of :meth:`run`'s output.

        The warmup count travels with the trace so downstream
        consumers (e.g. resilience benchmarks) can exclude warmup
        requests from availability and tail-latency statistics without
        re-deriving the generator's configuration.
        """
        warmup = [t for t in traces if t.is_warmup]
        measured = [t for t in traces if not t.is_warmup]
        return TraceSummary(
            warmup_requests=len(warmup),
            measured_requests=len(measured),
            warmup_ops=sum(t.op_count for t in warmup),
            measured_ops=sum(t.op_count for t in measured),
        )
