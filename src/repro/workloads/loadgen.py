"""oss-performance-style load generation.

Section 5.1: "We used the load generator available with the
oss-performance suite to generate client requests.  The load generator
emulates load from a large pool of client clusters ... It generates
300 warmup requests, then as many requests as possible in next one
minute."

This module reproduces that request-driven structure at simulation
scale: a :class:`LoadGenerator` produces per-request operation bundles
(hash ops, allocation ops, string ops, regexp tasks) for a workload,
split into a warmup phase (structures learn; statistics discarded) and
a measurement phase.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.common.rng import DeterministicRng
from repro.common.stats import StatRegistry
from repro.workloads.allocs import AllocOp, AllocOpGenerator
from repro.workloads.apps import AppWorkload
from repro.workloads.hashops import HashOp, HashOpGenerator
from repro.workloads.regexops import RegexOpGenerator, ReuseTask, SiftTask
from repro.workloads.strops import StrOp, StrOpGenerator


@dataclass
class RequestTrace:
    """All runtime operations of one simulated HTTP request."""

    index: int
    is_warmup: bool
    hash_ops: list[HashOp] = field(default_factory=list)
    alloc_ops: list[AllocOp] = field(default_factory=list)
    str_ops: list[StrOp] = field(default_factory=list)
    sift_tasks: list[SiftTask] = field(default_factory=list)
    reuse_tasks: list[ReuseTask] = field(default_factory=list)

    @property
    def op_count(self) -> int:
        return (
            len(self.hash_ops) + len(self.alloc_ops) + len(self.str_ops)
            + len(self.sift_tasks) + len(self.reuse_tasks)
        )


@dataclass(frozen=True)
class TraceSummary:
    """Warmup/measurement split of a generated trace.

    Resilience and availability statistics must be computed over the
    measured phase only — the warmup phase exists so hardware
    structures can learn, and its failures/latencies are not the
    tier's steady-state behavior.  This summary makes the split
    explicit for any consumer of :meth:`LoadGenerator.run`.
    """

    warmup_requests: int
    measured_requests: int
    warmup_ops: int
    measured_ops: int

    @property
    def total_requests(self) -> int:
        return self.warmup_requests + self.measured_requests


class LoadGenerator:
    """Streams request traces for one application workload.

    Parameters
    ----------
    app:
        The application definition.
    rng:
        Deterministic seed source; all request content derives from it.
    warmup_requests:
        Requests generated before measurement begins.  The paper uses
        300; the default here is scaled down with the trace sizes (the
        simulated structures are warm after a handful of requests —
        tests assert this).
    """

    def __init__(
        self,
        app: AppWorkload,
        rng: DeterministicRng,
        warmup_requests: int = 5,
    ) -> None:
        if warmup_requests < 0:
            raise ValueError(
                f"warmup_requests cannot be negative, got {warmup_requests}"
            )
        self.app = app
        self.rng = rng
        self.warmup_requests = warmup_requests
        self._hash_gen = HashOpGenerator(app.hash_spec, rng.fork("hash"))
        self._alloc_gen = AllocOpGenerator(app.alloc_spec, rng.fork("alloc"))
        self._str_gen = StrOpGenerator(app.string_spec, rng.fork("str"))
        self._regex_gen = RegexOpGenerator(app.regex_spec, rng.fork("regex"))
        self._issued = 0

    @property
    def hash_generator(self) -> HashOpGenerator:
        """Exposed so consumers can map map_ids to base addresses."""
        return self._hash_gen

    def next_request(self) -> RequestTrace:
        """Generate the next request's full operation bundle."""
        index = self._issued
        self._issued += 1
        trace = RequestTrace(
            index=index,
            is_warmup=index < self.warmup_requests,
            hash_ops=list(self._hash_gen.request_ops()),
            alloc_ops=list(self._alloc_gen.request_ops()),
            str_ops=list(self._str_gen.request_ops()),
            sift_tasks=list(self._regex_gen.sift_tasks()),
            reuse_tasks=list(self._regex_gen.reuse_tasks()),
        )
        return trace

    def run(self, measured_requests: int | None = None) -> list[RequestTrace]:
        """Warmup + measurement: returns all traces, flagged."""
        measured = (
            measured_requests if measured_requests is not None
            else self.app.requests
        )
        return [
            self.next_request()
            for _ in range(self.warmup_requests + measured)
        ]

    @staticmethod
    def summarize(traces: list[RequestTrace]) -> TraceSummary:
        """Warmup/measured split of :meth:`run`'s output.

        The warmup count travels with the trace so downstream
        consumers (e.g. resilience benchmarks) can exclude warmup
        requests from availability and tail-latency statistics without
        re-deriving the generator's configuration.
        """
        warmup = [t for t in traces if t.is_warmup]
        measured = [t for t in traces if not t.is_warmup]
        return TraceSummary(
            warmup_requests=len(warmup),
            measured_requests=len(measured),
            warmup_ops=sum(t.op_count for t in warmup),
            measured_ops=sum(t.op_count for t in measured),
        )


# ---------------------------------------------------------------------------
# Shared trace streams
# ---------------------------------------------------------------------------
#
# Trace generation is fully deterministic in (app spec, seed, warmup),
# and profiling shows it dominates experiment wall time: every
# experiment that drives the same app at the same seed regenerates the
# identical RequestTrace sequence (the software and hardware drives of
# ``run_app_experiment`` alone do it twice).  Since no simulator
# mutates a trace's op lists, the traces can be generated once per
# (app, seed, warmup) and shared by reference.


def _spec_fingerprint(app: AppWorkload) -> str:
    """Stable content hash of everything trace generation depends on."""
    text = repr((
        app.name, app.hash_spec, app.alloc_spec, app.string_spec,
        app.regex_spec,
    ))
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


class SharedTraceStream:
    """Lazily materialized, memoized view of one LoadGenerator stream."""

    def __init__(
        self, app: AppWorkload, seed: int, warmup_requests: int
    ) -> None:
        self._generator = LoadGenerator(
            app, DeterministicRng(seed), warmup_requests=warmup_requests
        )
        self._traces: list[RequestTrace] = []

    @property
    def hash_generator(self) -> HashOpGenerator:
        """The underlying hash-op generator (for base-address mapping)."""
        return self._generator.hash_generator

    def trace(self, index: int) -> RequestTrace:
        """The ``index``-th request trace, generating up to it on demand."""
        while len(self._traces) <= index:
            self._traces.append(self._generator.next_request())
        return self._traces[index]

    def traces(self, count: int) -> list[RequestTrace]:
        """The first ``count`` request traces."""
        self.trace(count - 1)
        return self._traces[:count]


class TraceCache:
    """Process-level cache of :class:`SharedTraceStream` objects.

    Keyed on (spec fingerprint, seed, warmup): two experiments asking
    for the same app at the same seed share one generated stream.
    Consumers must never mutate the shared RequestTrace objects — the
    equivalence tests drive both cached and uncached paths to the same
    byte-identical reports.
    """

    MAX_STREAMS = 64

    def __init__(self) -> None:
        self._streams: dict[tuple[str, int, int], SharedTraceStream] = {}
        self.stats = StatRegistry("tracecache")
        self.enabled = True

    def stream(
        self, app: AppWorkload, seed: int, warmup_requests: int = 0
    ) -> SharedTraceStream:
        if not self.enabled:
            self.stats.bump("tracecache.bypasses")
            return SharedTraceStream(app, seed, warmup_requests)
        key = (_spec_fingerprint(app), seed, warmup_requests)
        found = self._streams.get(key)
        if found is not None:
            self.stats.bump("tracecache.hits")
            return found
        self.stats.bump("tracecache.misses")
        if len(self._streams) >= self.MAX_STREAMS:
            self._streams.clear()
        stream = SharedTraceStream(app, seed, warmup_requests)
        self._streams[key] = stream
        return stream

    def clear(self) -> None:
        self._streams.clear()


#: The process-wide shared trace cache.
TRACE_CACHE = TraceCache()
