"""Workload substrate: synthetic WordPress/Drupal/MediaWiki traffic.

Everything the paper measures flows from here: leaf-function profiles
(:mod:`repro.workloads.profiles`), per-category operation streams
(:mod:`repro.workloads.hashops` / ``allocs`` / ``strops`` /
``regexops``), the content generator (:mod:`repro.workloads.text`),
per-application parameterizations (:mod:`repro.workloads.apps`), and
the request driver (:mod:`repro.workloads.loadgen`).
"""

from repro.workloads.allocs import (
    AllocOp,
    AllocOpGenerator,
    AllocWorkloadSpec,
    size_fraction_at_or_below,
)
from repro.workloads.apps import (
    AppWorkload,
    drupal,
    mediawiki,
    php_applications,
    specweb_banking,
    specweb_ecommerce,
    specweb_profile,
    wordpress,
)
from repro.workloads.hashops import (
    HashOp,
    HashOpGenerator,
    HashWorkloadSpec,
    trace_statistics,
)
from repro.workloads.loadgen import LoadGenerator, RequestTrace, TraceSummary
from repro.workloads.profiles import (
    ACCELERATED,
    Activity,
    LeafFunction,
    MITIGATION_FACTORS,
    Profile,
    apply_mitigations,
    flat_php_profile,
    hotspot_profile,
)
from repro.workloads.regexops import (
    AUTHOR_URL_PATTERN,
    RegexFunctionSet,
    RegexOpGenerator,
    RegexWorkloadSpec,
    ReuseTask,
    SANITIZE_SET,
    SHORTCODE_SET,
    SiftTask,
    WIKITEXT_SET,
    WPTEXTURIZE_SET,
)
from repro.workloads.server import (
    LoadPoint,
    ServerConfig,
    ServedRequest,
    WebServerSimulator,
    latency_curve,
    slo_capacity,
)
from repro.workloads.templates import (
    APP_TEMPLATES,
    AppTemplate,
    build_variables,
    render_app_page,
)
from repro.workloads.validation import Anchor, fidelity_failures, validate_app
from repro.workloads.strops import (
    SMART_QUOTE_MAP,
    StringWorkloadSpec,
    StrOp,
    StrOpGenerator,
)
from repro.workloads.text import (
    ContentSpec,
    SEGMENT_BYTES,
    TEXTURIZE_SPECIALS,
    TextCorpus,
    special_char_segments,
)

__all__ = [
    "AllocOp", "AllocOpGenerator", "AllocWorkloadSpec",
    "size_fraction_at_or_below",
    "AppWorkload", "wordpress", "drupal", "mediawiki",
    "php_applications", "specweb_banking", "specweb_ecommerce",
    "specweb_profile",
    "HashOp", "HashOpGenerator", "HashWorkloadSpec", "trace_statistics",
    "LoadGenerator", "RequestTrace", "TraceSummary",
    "Activity", "ACCELERATED", "LeafFunction", "MITIGATION_FACTORS",
    "Profile", "apply_mitigations", "flat_php_profile", "hotspot_profile",
    "RegexFunctionSet", "RegexOpGenerator", "RegexWorkloadSpec",
    "ReuseTask", "SiftTask", "AUTHOR_URL_PATTERN",
    "WPTEXTURIZE_SET", "SHORTCODE_SET", "SANITIZE_SET", "WIKITEXT_SET",
    "StrOp", "StrOpGenerator", "StringWorkloadSpec", "SMART_QUOTE_MAP",
    "ContentSpec", "TextCorpus", "SEGMENT_BYTES", "TEXTURIZE_SPECIALS",
    "special_char_segments",
    "WebServerSimulator", "ServerConfig", "ServedRequest", "LoadPoint",
    "latency_curve", "slo_capacity",
    "APP_TEMPLATES", "AppTemplate", "build_variables", "render_app_page",
    "Anchor", "validate_app", "fidelity_failures",
]
