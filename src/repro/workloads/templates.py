"""Executable MiniPHP templates for the three applications.

Where :mod:`repro.workloads.apps` describes the applications
*statistically* (operation mixes), this module describes them
*programmatically*: one MiniPHP template per application, shaped like
the real thing's hot path (WordPress loop + texturize, Drupal region
rendering, MediaWiki wikitext transformation), plus a deterministic
variable generator.  Rendering a template through
:class:`repro.runtime.interp.MiniPhpInterpreter` on the accelerated
backend drives every accelerator with *real program semantics*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import DeterministicRng
from repro.runtime.interp import MiniPhpInterpreter
from repro.workloads.text import ContentSpec, TextCorpus

WORDPRESS_TEMPLATE = """<!doctype html>
<html><head><title><?= htmlspecialchars($blog_name) ?></title></head>
<body class="home blog">
<header><h1><?= strtoupper($blog_name) ?></h1>
<p class="tagline"><?= trim($tagline) ?></p></header>
<main id="content">
<?php foreach ($posts as $slug => $post): ?>
  <article id="post-<?= $slug ?>">
    <h2><a href="/?p=<?= $slug ?>"><?= htmlspecialchars($post['title']) ?></a></h2>
    <div class="entry"><?= preg_replace("'[A-Za-z]+", "&#8217;s", htmlspecialchars($post['content'])) ?></div>
    <p class="meta">by <?= $post['author'] ?> &middot; <?= strlen($post['content']) ?> chars</p>
  </article>
<?php endforeach; ?>
</main>
<?php if (count($posts) > 2): ?><nav class="paging"><a href="/page/2">Older posts</a></nav><?php endif; ?>
<footer><?= str_replace('YEAR', '2017', $footer) ?></footer>
</body></html>"""

DRUPAL_TEMPLATE = """<!doctype html>
<html><head><title><?= htmlspecialchars($site_name) ?> | <?= $section ?></title></head>
<body class="node-page">
<div id="header"><h1><?= $site_name ?></h1></div>
<?php foreach ($regions as $region => $blocks): ?>
<div class="region region-<?= $region ?>">
<?php foreach ($blocks as $block_id => $block): ?>
  <div class="block" id="block-<?= $block_id ?>">
    <h3><?= htmlspecialchars($block['subject']) ?></h3>
    <div class="content"><?= htmlspecialchars($block['body']) ?></div>
  </div>
<?php endforeach; ?>
</div>
<?php endforeach; ?>
<div id="node"><?= preg_replace("\\[[a-z]+", "[token]", htmlspecialchars($node_body)) ?></div>
<div id="footer"><?= strtolower($footer_message) ?></div>
</body></html>"""

MEDIAWIKI_TEMPLATE = """<!doctype html>
<html><head><title><?= $page_title ?> - <?= $wiki_name ?></title></head>
<body class="mediawiki">
<h1 id="firstHeading"><?= htmlspecialchars($page_title) ?></h1>
<div id="bodyContent">
<?php $html = htmlspecialchars($wikitext); ?>
<?php $html = str_replace("[[", "<a>", $html); ?>
<?php $html = str_replace("]]", "</a>", $html); ?>
<?php $html = preg_replace("==+", "<h2>", $html); ?>
<div class="mw-parser-output"><?= $html ?></div>
</div>
<div id="catlinks">
<?php foreach ($categories as $cat): ?><span class="cat"><?= strtoupper($cat) ?></span> <?php endforeach; ?>
</div>
<div class="printfooter">retrieved from <?= strtolower($wiki_name) ?>.example</div>
</body></html>"""


@dataclass(frozen=True)
class AppTemplate:
    """One application's template plus its variable builder name."""

    name: str
    source: str


APP_TEMPLATES: dict[str, AppTemplate] = {
    "wordpress": AppTemplate("wordpress", WORDPRESS_TEMPLATE),
    "drupal": AppTemplate("drupal", DRUPAL_TEMPLATE),
    "mediawiki": AppTemplate("mediawiki", MEDIAWIKI_TEMPLATE),
}


def build_variables(
    app: str, interp: MiniPhpInterpreter, rng: DeterministicRng
) -> dict:
    """Deterministic template variables for one request of ``app``.

    Arrays are created through the interpreter so that, on the
    accelerated backend, they are registered with the hardware hash
    table (the coherence partner registry).
    """
    corpus = TextCorpus(rng.fork(f"{app}-corpus"))
    spec = ContentSpec(paragraphs=1, words_per_paragraph=40,
                       special_segment_fraction=0.3)
    if app == "wordpress":
        posts = interp.new_array()
        for _ in range(rng.randint(2, 4)):
            post = interp.new_array()
            interp.array_set(post, "title",
                             corpus.slug(3).replace("-", " ").title())
            interp.array_set(post, "content", corpus.paragraph(spec))
            interp.array_set(post, "author", corpus.rng.ascii_word(4, 8))
            interp.array_set(posts, corpus.slug(2), post)
        return {
            "blog_name": "Just Another PHP Blog",
            "tagline": "  all content, no cache misses  ",
            "posts": posts,
            "footer": "&copy; YEAR some authors",
        }
    if app == "drupal":
        regions = interp.new_array()
        for region in ("sidebar", "content"):
            blocks = interp.new_array()
            for b in range(rng.randint(1, 3)):
                block = interp.new_array()
                interp.array_set(block, "subject",
                                 corpus.slug(2).replace("-", " "))
                interp.array_set(block, "body", corpus.paragraph(spec))
                interp.array_set(blocks, f"{region}-{b}", block)
            interp.array_set(regions, region, blocks)
        return {
            "site_name": "Drupal Site",
            "section": corpus.rng.ascii_word(4, 9),
            "regions": regions,
            "node_body": "[token] " + corpus.paragraph(spec),
            "footer_message": "POWERED BY REGIONS",
        }
    if app == "mediawiki":
        categories = interp.new_array()
        for i in range(rng.randint(2, 4)):
            interp.array_set(categories, str(i), corpus.rng.ascii_word(4, 9))
        wikitext = (
            f"== {corpus.slug(2)} ==\n"
            f"{corpus.paragraph(spec)} see [[{corpus.slug(2)}]] "
            f"and [[{corpus.slug(3)}]]."
        )
        return {
            "wiki_name": "ReproWiki",
            "page_title": corpus.slug(2).replace("-", " ").title(),
            "wikitext": wikitext,
            "categories": categories,
        }
    raise ValueError(f"unknown app {app!r}")


def render_app_page(
    app: str, interp: MiniPhpInterpreter, rng: DeterministicRng
) -> str:
    """Render one request's page for ``app`` on ``interp``'s backend."""
    template = APP_TEMPLATES[app]
    return interp.render(template.source, build_variables(app, interp, rng))


def render_http_page(
    app: str, seed: int, vary: int = 0, accelerated: bool = True
) -> tuple[str, dict[str, int]]:
    """Render the page the live HTTP server serves for one route.

    The single source of truth for what ``GET /<app>?seed=S&vary=V``
    returns: a fresh interpreter (accelerated backend by default) over
    a rng forked from ``(seed, vary)``, so the bytes are a pure
    function of the query — which is what makes the served-bytes
    differential oracle in :mod:`repro.conformance.oracles` possible,
    and what makes the fragment cache in :mod:`repro.serve.httpd`
    sound (same key, same bytes).  Returns ``(html, op_counters)``
    where the counters are the interpreter/backend work done for this
    render (the telemetry stream's per-request backend column).
    """
    if app not in APP_TEMPLATES:
        raise KeyError(f"unknown app {app!r}")
    if accelerated:
        from repro.runtime.interp import AcceleratedBackend

        interp = MiniPhpInterpreter(AcceleratedBackend())
    else:
        interp = MiniPhpInterpreter()
    rng = DeterministicRng(seed).fork(f"serve-{app}-{vary}")
    html = render_app_page(app, interp, rng)
    ops = {
        "var_gets": interp.stats.get("interp.var_gets"),
        "var_sets": interp.stats.get("interp.var_sets"),
        "calls": interp.stats.get("interp.calls"),
        "backend_cycles": int(interp.backend.cost_cycles()),
    }
    return html, ops
