"""Bounded per-request telemetry for the live serving path.

Every request the server finishes (served, shed, timed out, or
rejected at parse) appends one event; the log is a bounded ring so a
10k-connection run cannot grow memory without bound — overflow drops
the *oldest* events and counts them, so the tail of a run (the part a
post-mortem reads first) always survives.  ``write_jsonl`` persists
the ring to ``benchmarks/out/`` as one JSON object per line, each
self-describing via the ``repro-serve-telemetry/1`` schema marker.

This is the measured-traffic stream the OpenDT-style calibration loop
(ROADMAP item 3) will consume: per-request queue wait, render time,
cache outcome, and backend op counters — enough to fit service-time
distributions and hit ratios against observed, not assumed, traffic.

Timestamps are *relative* milliseconds since the run started (from
:mod:`repro.core.clock` monotonic reads): wall-clock values are
inherently non-reproducible, so no absolute time ever lands in an
event row.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterator

#: Event format marker; bump on schema changes.
TELEMETRY_SCHEMA = "repro-serve-telemetry/1"

#: Cache outcome vocabulary (``none`` = the request never reached the
#: render path: parse errors, unknown routes, sheds).
CACHE_OUTCOMES = ("hit", "stale", "miss", "coalesced", "none")


@dataclass(frozen=True)
class RequestEvent:
    """One finished request, as the server saw it."""

    #: milliseconds since the telemetry epoch (run start)
    t_ms: float
    #: route name (``wordpress``/``drupal``/``mediawiki``) or ``-``
    route: str
    #: HTTP status the client was sent (0 = connection died first)
    status: int
    #: cache outcome, one of :data:`CACHE_OUTCOMES`
    cache: str
    #: time from arrival to render dispatch (0 for cache hits)
    queue_wait_ms: float
    #: synchronous render time billed to this request (0 on hits)
    render_ms: float
    #: arrival to last response byte
    total_ms: float
    #: response body bytes
    bytes_out: int
    #: why the request was refused ("" when served)
    shed: str = ""
    #: interpreter/backend op counters for this render ({} on hits)
    ops: dict = field(default_factory=dict)

    def to_row(self) -> dict:
        row = {"schema": TELEMETRY_SCHEMA}
        row.update(asdict(self))
        return row


def validate_event_row(row: dict) -> None:
    """Schema check for one telemetry JSONL row."""
    if row.get("schema") != TELEMETRY_SCHEMA:
        raise ValueError(
            f"unexpected telemetry schema: {row.get('schema')!r}"
        )
    for name in ("t_ms", "queue_wait_ms", "render_ms", "total_ms"):
        value = row.get(name)
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(
                f"telemetry row [{name!r}] must be a non-negative "
                f"number, got {value!r}"
            )
    if not isinstance(row.get("route"), str):
        raise ValueError("telemetry row ['route'] must be a string")
    status = row.get("status")
    if not isinstance(status, int) or not (0 <= status <= 599):
        raise ValueError(
            f"telemetry row ['status'] must be an HTTP status or 0, "
            f"got {status!r}"
        )
    if row.get("cache") not in CACHE_OUTCOMES:
        raise ValueError(
            f"telemetry row ['cache'] must be one of {CACHE_OUTCOMES}, "
            f"got {row.get('cache')!r}"
        )
    bytes_out = row.get("bytes_out")
    if not isinstance(bytes_out, int) or bytes_out < 0:
        raise ValueError(
            "telemetry row ['bytes_out'] must be a non-negative int"
        )
    if not isinstance(row.get("shed"), str):
        raise ValueError("telemetry row ['shed'] must be a string")
    if not isinstance(row.get("ops"), dict):
        raise ValueError("telemetry row ['ops'] must be an object")


class TelemetryLog:
    """Bounded in-memory event ring with JSONL persistence."""

    def __init__(self, max_events: int = 50_000) -> None:
        if max_events < 1:
            raise ValueError(
                f"max_events must be >= 1, got {max_events}"
            )
        self.max_events = max_events
        self._events: deque[RequestEvent] = deque(maxlen=max_events)
        #: events discarded because the ring was full
        self.dropped = 0
        #: every event ever offered (kept + dropped)
        self.recorded = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[RequestEvent]:
        return iter(self._events)

    def record(self, event: RequestEvent) -> None:
        self.recorded += 1
        if len(self._events) == self.max_events:
            self.dropped += 1
        self._events.append(event)

    def write_jsonl(self, path: str | Path) -> Path:
        """Persist the ring, one schema-tagged JSON object per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for event in self._events:
                fh.write(json.dumps(event.to_row(), sort_keys=True))
                fh.write("\n")
        return path

    @staticmethod
    def read_jsonl(path: str | Path) -> list[dict]:
        """Load and schema-check a persisted telemetry stream.

        Malformed or truncated lines fail with ``path:lineno:`` in
        the message so a corrupt capture points at the exact row —
        calibration refuses such streams rather than fitting around
        them.
        """
        path = Path(path)
        rows = []
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
                if not isinstance(row, dict):
                    raise ValueError(
                        f"expected a JSON object, got "
                        f"{type(row).__name__}"
                    )
                validate_event_row(row)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
            rows.append(row)
        return rows

    def latency_samples(self) -> list[float]:
        """Total-latency samples (ms) of the *served* requests."""
        return [
            e.total_ms for e in self._events
            if 200 <= e.status < 300
        ]


def summarize_ops(events: Iterator[RequestEvent]) -> dict[str, int]:
    """Aggregate backend op counters across a stream of events."""
    totals: dict[str, int] = {}
    for event in events:
        for name, value in event.ops.items():
            totals[name] = totals.get(name, 0) + int(value)
    return totals
