"""Live serving path: asyncio HTTP/1.1 over the MiniPHP renderer.

Everything else in this repo evaluates requests in *event-driven*
time; this package is the wall-clock substrate ROADMAP item 1 asks
for — real concurrent sockets in front of
:class:`~repro.runtime.interp.MiniPhpInterpreter` on the accelerated
backend, with the PR-1/PR-6 overload policies re-costed onto seconds:

* :mod:`repro.serve.httpd` — the server: routes ``/wordpress``,
  ``/drupal``, ``/mediawiki`` (seeded query params vary the render
  context), admission control, per-request deadlines, AIMD adaptive
  concurrency, and a rendered-fragment cache reusing the
  stampede defenses from :mod:`repro.fleet.cache_tier`
  (single-flight, stale-while-revalidate, TTL jitter).
* :mod:`repro.serve.loadclient` — an open-loop asyncio load driver
  holding thousands of keep-alive connections, with the
  diurnal/flash arrival shapes of :mod:`repro.fleet.overload` and a
  retry budget capping client amplification.
* :mod:`repro.serve.telemetry` — a bounded per-request JSONL event
  stream (``repro-serve-telemetry/1``).
* :mod:`repro.serve.report` — the :class:`ServeReport` (goodput,
  wall-clock p50/p99/p999, cache hit ratio, shed/timeout counts, SLO
  verdict at the simulators' 95% bar) plus the
  ``repro-serve-history/1`` trajectory row.

Wall-clock access is only through :mod:`repro.core.clock` — the
DET001 lint rule stays blocking over this package.
"""

from repro.serve.httpd import MiniPhpServer, ServeConfig
from repro.serve.loadclient import LoadConfig, LoadResult, run_load
from repro.serve.report import (
    SERVE_SCHEMA,
    ServeReport,
    append_serve_history,
    validate_serve_payload,
)
from repro.serve.run import run_serve
from repro.serve.telemetry import TELEMETRY_SCHEMA, TelemetryLog

__all__ = [
    "SERVE_SCHEMA",
    "TELEMETRY_SCHEMA",
    "LoadConfig",
    "LoadResult",
    "MiniPhpServer",
    "ServeConfig",
    "ServeReport",
    "TelemetryLog",
    "append_serve_history",
    "run_load",
    "run_serve",
    "validate_serve_payload",
]
