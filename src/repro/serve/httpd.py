"""Asyncio HTTP/1.1 front-end over the MiniPHP renderer.

A stdlib-only live server: ``GET /wordpress|/drupal|/mediawiki`` with
seeded query params (``?seed=S&vary=V``) renders through
:func:`repro.workloads.templates.render_http_page` — a fresh
:class:`~repro.runtime.interp.MiniPhpInterpreter` on the accelerated
backend per render, so the bytes served are a pure function of the
route and query (the property the served-bytes differential oracle
pins).  Around that pure core, the PR-1/PR-6 overload policies are
re-costed from event-driven cycles onto wall-clock seconds:

* **Admission control** — at most ``max_pending_renders`` renders may
  be queued or running; a miss beyond that is shed with ``503``
  before any render capacity is spent.
* **Per-request deadline** — a render that cannot complete within
  ``deadline_s`` answers ``504``; a queued render whose requester's
  deadline already passed when a worker picks it up is *skipped*
  (dequeue-time shedding — the mechanism that stops zombie renders).
* **AIMD adaptive concurrency** — the PR-6
  :class:`~repro.resilience.policies.AdaptiveConcurrencyLimit`,
  constructed with seconds instead of cycles, gates render dispatch
  on observed latency.
* **Rendered-fragment cache** — the stampede defenses of
  :mod:`repro.fleet.cache_tier`, byte-for-byte the same state
  machine (:class:`~repro.fleet.cache_tier.CacheShard` carrying the
  rendered bytes, consistent-hash ring, deterministic TTL jitter,
  stale-while-revalidate with one background refresh, single-flight
  coalescing of concurrent misses).

Renders run on a small thread pool so the event loop keeps accepting
sockets while the interpreter works; every finished request lands in
the bounded :class:`~repro.serve.telemetry.TelemetryLog`.  Wall-clock
access is exclusively through :mod:`repro.core.clock` — DET001 stays
blocking over this module.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional
from urllib.parse import parse_qs

from repro.common.stats import StatRegistry
from repro.core import clock
from repro.fleet.cache_tier import (
    CacheShard,
    CacheTierConfig,
    ShardRing,
    jittered_ttl,
)
from repro.resilience.policies import (
    AdaptiveConcurrencyLimit,
    AdaptiveConcurrencyPolicy,
)
from repro.serve.telemetry import RequestEvent, TelemetryLog
from repro.workloads.templates import APP_TEMPLATES, render_http_page

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    414: "URI Too Long",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Default fragment-cache shape: TTLs resolved against
#: ``service_estimate_s`` exactly as the fleet tier resolves them
#: against mean service cycles; jitter + SWR + single-flight on by
#: default because the load driver exists to create stampedes.
DEFAULT_FRAGMENT_CACHE = CacheTierConfig(
    shards=4,
    shard_capacity=1024,
    ttl_services=4000.0,
    ttl_jitter=0.2,
    stale_services=2000.0,
    single_flight=True,
)


@dataclass(frozen=True)
class ServeConfig:
    """Shape and policy of one live server instance.

    The ``*_services`` knobs inside ``cache`` and ``adaptive`` keep
    the fleet convention (multiples of a mean service time) and are
    resolved against ``service_estimate_s`` — the wall-clock
    re-costing unit standing in for the simulators' mean service
    cycles.
    """

    host: str = "127.0.0.1"
    #: 0 → bind an ephemeral port (read it back from ``server.port``)
    port: int = 0
    #: server-side deadline per request, seconds (None → unbounded)
    deadline_s: Optional[float] = 2.0
    #: admission control: renders queued+running beyond this shed 503
    max_pending_renders: int = 128
    #: AIMD adaptive concurrency on the render path (None → off)
    adaptive: Optional[AdaptiveConcurrencyPolicy] = \
        AdaptiveConcurrencyPolicy(target_latency_services=100.0,
                                  max_limit=64.0)
    #: wall-clock stand-in for "one mean service", seconds
    service_estimate_s: float = 0.004
    #: rendered-fragment cache (None → render every request)
    cache: Optional[CacheTierConfig] = DEFAULT_FRAGMENT_CACHE
    #: render thread-pool width
    render_workers: int = 4
    #: request-line byte cap (beyond → 414)
    max_request_line: int = 4096
    #: total header-block byte cap (beyond → 431)
    max_header_bytes: int = 16384
    #: grace for in-flight requests at graceful shutdown, seconds
    drain_timeout_s: float = 5.0
    #: per-read deadline on idle/slow client sockets, seconds
    idle_timeout_s: float = 30.0
    #: bounded telemetry ring size
    telemetry_max_events: int = 50_000
    #: listen backlog (connection storms arrive faster than accepts)
    backlog: int = 4096

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")
        if self.max_pending_renders < 1:
            raise ValueError("max_pending_renders must be >= 1")
        if self.service_estimate_s <= 0:
            raise ValueError("service_estimate_s must be positive")
        if self.render_workers < 1:
            raise ValueError("render_workers must be >= 1")
        if self.max_request_line < 64:
            raise ValueError("max_request_line must be >= 64")
        if self.max_header_bytes < 256:
            raise ValueError("max_header_bytes must be >= 256")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s cannot be negative")
        if self.idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive")


class FragmentCache:
    """Rendered-page cache: the fleet tier's machinery on seconds.

    Mirrors :class:`~repro.fleet.cache_tier.ObjectCacheTier` —
    consistent-hash ring over value-carrying
    :class:`~repro.fleet.cache_tier.CacheShard` instances, TTL/stale
    windows resolved from ``*_services`` knobs, deterministic per-key
    TTL jitter — with ``now`` in monotonic seconds instead of event
    cycles, and the rendered bytes riding in the shard entries.
    """

    def __init__(
        self, config: CacheTierConfig, mean_service_s: float
    ) -> None:
        if mean_service_s <= 0:
            raise ValueError("mean_service_s must be positive")
        self.config = config
        self.ttl_s = (
            config.ttl_services * mean_service_s
            if config.ttl_services is not None else None
        )
        self.stale_s = (
            config.stale_services * mean_service_s
            if config.stale_services is not None else None
        )
        self.stats = StatRegistry("servecache")
        self.ring = ShardRing(config.shards, config.virtual_nodes)
        self.shards = [
            CacheShard(config.shard_capacity, self.stats)
            for _ in range(config.shards)
        ]

    def probe(self, key: str, now: float) -> tuple[str, Optional[bytes]]:
        """Three-way lookup returning the cached bytes when servable."""
        shard = self.shards[self.ring.lookup(key)]
        self.stats.bump("cache.lookups")
        state = shard.probe(key, now, self.stale_s)
        if state == "hit":
            self.stats.bump("cache.hits")
        elif state == "stale":
            self.stats.bump("cache.hits")
            self.stats.bump("cache.stale_hits")
        else:
            self.stats.bump("cache.misses")
            return "miss", None
        value = shard.value_of(key)
        if value is None:  # presence without bytes cannot be served
            self.stats.bump("cache.value_lost")
            return "miss", None
        return state, value  # type: ignore[return-value]

    def fill(self, key: str, now: float, body: bytes) -> None:
        shard = self.shards[self.ring.lookup(key)]
        ttl = jittered_ttl(key, self.ttl_s, self.config.ttl_jitter)
        shard.put(key, now, ttl, value=body)
        self.stats.bump("cache.fills")

    def expire_all(self, now: float) -> int:
        """Mass expiry (the deploy-flush trigger), SWR still servable."""
        touched = sum(s.expire_all(now) for s in self.shards)
        self.stats.bump("cache.mass_expiries")
        return touched

    @property
    def hit_ratio(self) -> float:
        return self.stats.ratio("cache.hits", "cache.lookups")


class _HttpError(Exception):
    """Parse/validation failure mapped straight to a status code."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


class _RenderExpired(Exception):
    """The queued render was skipped: its requester's deadline passed."""


@dataclass
class _Request:
    """One parsed request plus its arrival bookkeeping."""

    method: str
    path: str
    query: str
    version: str
    headers: dict[str, str]
    t_arrive: float
    keep_alive: bool = field(default=True)


class MiniPhpServer:
    """The live server; ``await start()`` then point clients at ``port``."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        render_fn: Optional[Callable[..., tuple[str, dict]]] = None,
    ) -> None:
        self.config = config or ServeConfig()
        #: injectable for tests (slow renders, failures); must keep
        #: the pure (app, seed, vary) -> (html, ops) contract
        self.render_fn = render_fn or render_http_page
        self.stats = StatRegistry("serve")
        self.telemetry = TelemetryLog(self.config.telemetry_max_events)
        self.cache: Optional[FragmentCache] = (
            FragmentCache(self.config.cache,
                          self.config.service_estimate_s)
            if self.config.cache is not None else None
        )
        self._aimd: Optional[AdaptiveConcurrencyLimit] = (
            AdaptiveConcurrencyLimit(self.config.adaptive,
                                     self.config.service_estimate_s)
            if self.config.adaptive is not None else None
        )
        self._server: Optional[asyncio.Server] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._fill_tasks: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._busy_tasks: set[asyncio.Task] = set()
        self._renders_pending = 0
        self._last_ops: dict = {}
        self._draining = False
        self._epoch = 0.0
        self.port = 0
        self.peak_connections = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._epoch = clock.monotonic()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.render_workers,
            thread_name_prefix="repro-render",
        )
        limit = self.config.max_header_bytes + 1024
        server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            backlog=self.config.backlog,
            limit=limit,
        )
        if self._server is not None:
            # A concurrent start() won the race while we awaited.
            server.close()
            raise RuntimeError("server already started")
        self._server = server
        self.port = server.sockets[0].getsockname()[1]

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting; drain in-flight work; release the pool.

        With ``drain=True`` (graceful): connections idle between
        requests are closed immediately, connections mid-request get
        up to ``drain_timeout_s`` to finish writing their response,
        and background cache fills are awaited so no render is torn
        mid-flight.  ``drain=False`` cancels everything.
        """
        self._draining = True
        # Claim the listener before the first await so a concurrent
        # stop() cannot close it twice.
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        idle = [t for t in self._conn_tasks if t not in self._busy_tasks]
        for task in idle:
            task.cancel()
        busy = list(self._busy_tasks)
        if busy:
            if drain:
                _, leftover = await asyncio.wait(
                    busy, timeout=self.config.drain_timeout_s
                )
                for task in leftover:
                    task.cancel()
                    self.stats.bump("serve.drain_cancelled")
            else:
                for task in busy:
                    task.cancel()
        pending = list(self._conn_tasks)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        fills = list(self._fill_tasks)
        if fills:
            if drain:
                await asyncio.wait(
                    fills, timeout=self.config.drain_timeout_s
                )
            for task in fills:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*fills, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=drain)
            self._pool = None

    @property
    def open_connections(self) -> int:
        return len(self._conn_tasks)

    def _now_ms(self, t: float) -> float:
        return (t - self._epoch) * 1000.0

    # -- connection handling -------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        if len(self._conn_tasks) > self.peak_connections:
            self.peak_connections = len(self._conn_tasks)
        self.stats.bump("serve.connections")
        try:
            while not self._draining:
                keep = await self._serve_one(reader, writer, task)
                if not keep:
                    break
        except asyncio.CancelledError:
            self.stats.bump("serve.conn_cancelled")
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError, asyncio.TimeoutError,
                TimeoutError, OSError):
            # The client vanished mid-read or mid-write; the
            # connection dies, the server does not.
            self.stats.bump("serve.conn_aborted")
        finally:
            self._conn_tasks.discard(task)
            self._busy_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_one(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        task: asyncio.Task,
    ) -> bool:
        """Read and answer one request; False ends the connection."""
        try:
            request = await self._read_request(reader)
        except _HttpError as err:
            self.stats.bump("serve.bad_requests")
            await self._finish(
                writer, err.status, b"", "-", "none",
                clock.monotonic(), 0.0, 0.0, shed=err.detail,
                keep_alive=False,
            )
            return False
        if request is None:
            return False  # clean EOF between requests
        self._busy_tasks.add(task)
        try:
            return await self._dispatch(request, writer)
        finally:
            self._busy_tasks.discard(task)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[_Request]:
        try:
            line = await asyncio.wait_for(
                reader.readline(), self.config.idle_timeout_s
            )
        except asyncio.TimeoutError:
            # Idle keep-alive connection: close quietly, no response.
            return None
        except (ValueError, asyncio.LimitOverrunError):
            raise _HttpError(414, "request line exceeds limit") from None
        if not line:
            return None
        t_arrive = clock.monotonic()
        if len(line) > self.config.max_request_line:
            raise _HttpError(414, "request line exceeds limit")
        try:
            text = line.decode("ascii").rstrip("\r\n")
            method, target, version = text.split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(400, "malformed request line") from None
        if not version.startswith("HTTP/1."):
            raise _HttpError(400, f"unsupported version {version!r}")
        if method != "GET":
            raise _HttpError(405, f"method {method} not allowed")
        headers: dict[str, str] = {}
        total = 0
        while True:
            try:
                raw = await asyncio.wait_for(
                    reader.readline(), self.config.idle_timeout_s
                )
            except asyncio.TimeoutError:
                raise _HttpError(408, "timed out mid-headers") \
                    from None
            except (ValueError, asyncio.LimitOverrunError):
                raise _HttpError(431, "header line exceeds limit") \
                    from None
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                raise _HttpError(400, "connection closed mid-headers")
            total += len(raw)
            if total > self.config.max_header_bytes:
                raise _HttpError(431, "header block exceeds limit")
            try:
                name, sep, value = raw.decode("latin-1").partition(":")
            except UnicodeDecodeError:
                raise _HttpError(400, "undecodable header") from None
            if not sep or not name.strip():
                raise _HttpError(400, "malformed header line")
            headers[name.strip().lower()] = value.strip()
        path, _, query = target.partition("?")
        connection = headers.get("connection", "").lower()
        keep_alive = (
            connection != "close"
            if version == "HTTP/1.1"
            else connection == "keep-alive"
        )
        return _Request(
            method=method, path=path, query=query, version=version,
            headers=headers, t_arrive=t_arrive, keep_alive=keep_alive,
        )

    # -- request dispatch ----------------------------------------------------

    async def _dispatch(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> bool:
        self.stats.bump("serve.requests")
        keep = request.keep_alive and not self._draining
        if request.path in ("/", "/healthz"):
            body = self._index_page()
            await self._finish(
                writer, 200, body, "-", "none", request.t_arrive,
                0.0, 0.0, keep_alive=keep,
            )
            return keep
        app = request.path.strip("/")
        if app not in APP_TEMPLATES:
            await self._finish(
                writer, 404, b"", "-", "none", request.t_arrive,
                0.0, 0.0, shed="unknown route", keep_alive=keep,
            )
            return keep
        try:
            params = parse_qs(request.query, strict_parsing=False)
            seed = int(params.get("seed", ["0"])[0])
            vary = int(params.get("vary", ["0"])[0])
        except ValueError:
            await self._finish(
                writer, 400, b"", app, "none", request.t_arrive,
                0.0, 0.0, shed="non-integer query param",
                keep_alive=False,
            )
            return False
        status, body, cache_state, queue_wait, render_s, shed = \
            await self._get_page(app, seed, vary, request.t_arrive)
        await self._finish(
            writer, status, body, app, cache_state, request.t_arrive,
            queue_wait, render_s, shed=shed, keep_alive=keep,
        )
        return keep

    async def _get_page(
        self, app: str, seed: int, vary: int, t_arrive: float
    ) -> tuple[int, bytes, str, float, float, str]:
        """Serve from cache or render under the overload policies.

        Returns ``(status, body, cache_state, queue_wait_s,
        render_s, shed_reason)``.
        """
        cfg = self.config
        key = f"{app}?seed={seed}&vary={vary}"
        deadline = (
            t_arrive + cfg.deadline_s
            if cfg.deadline_s is not None else None
        )
        if self.cache is not None:
            state, body = self.cache.probe(key, clock.monotonic())
            if state == "hit":
                return 200, body, "hit", 0.0, 0.0, ""
            if state == "stale":
                # Stale-while-revalidate: serve immediately, let one
                # background refresh render (single-flight guarded).
                self._spawn_fill(key, app, seed, vary, t_arrive, None)
                return 200, body, "stale", 0.0, 0.0, ""
        single_flight = (
            self.cache is not None and self.config.cache.single_flight
        )
        fut = self._inflight.get(key) if single_flight else None
        if fut is not None:
            # Coalesce onto the in-flight render instead of
            # dispatching our own (the stampede defense).
            self.stats.bump("serve.coalesced")
            try:
                body = await self._await_render(fut, deadline)
            except _RenderExpired:
                return (504, b"", "coalesced", 0.0, 0.0,
                        "render expired before dispatch")
            except asyncio.TimeoutError:
                self.stats.bump("serve.timeouts")
                return (504, b"", "coalesced", 0.0, 0.0,
                        "deadline before coalesced render finished")
            return (200, body, "coalesced",
                    clock.monotonic() - t_arrive, 0.0, "")
        # -- admission control ahead of the render queue ----------------
        if self._renders_pending >= cfg.max_pending_renders:
            self.stats.bump("serve.shed_admission")
            return 503, b"", "miss", 0.0, 0.0, "admission queue full"
        if self._aimd is not None and \
                not self._aimd.admit(self._renders_pending):
            self.stats.bump("serve.shed_adaptive")
            return 503, b"", "miss", 0.0, 0.0, "adaptive limit"
        fill_fut = self._spawn_fill(
            key, app, seed, vary, t_arrive, deadline
        )
        t_dispatch = clock.monotonic()
        try:
            body = await self._await_render(fill_fut, deadline)
        except _RenderExpired:
            self.stats.bump("serve.timeouts")
            return (504, b"", "miss", t_dispatch - t_arrive, 0.0,
                    "render expired before dispatch")
        except asyncio.TimeoutError:
            self.stats.bump("serve.timeouts")
            return (504, b"", "miss", t_dispatch - t_arrive, 0.0,
                    "deadline before render finished")
        except Exception:
            self.stats.bump("serve.render_errors")
            return (500, b"", "miss", t_dispatch - t_arrive, 0.0,
                    "render raised")
        render_s = clock.monotonic() - t_dispatch
        return (200, body, "miss", t_dispatch - t_arrive,
                render_s, "")

    async def _await_render(
        self, fut: asyncio.Future, deadline: Optional[float]
    ) -> bytes:
        if deadline is None:
            return await asyncio.shield(fut)
        remaining = deadline - clock.monotonic()
        if remaining <= 0:
            raise asyncio.TimeoutError
        # shield(): a requester timing out must not cancel the shared
        # render — it still fills the cache for everyone else.
        return await asyncio.wait_for(asyncio.shield(fut), remaining)

    def _spawn_fill(
        self,
        key: str,
        app: str,
        seed: int,
        vary: int,
        t_arrive: float,
        deadline: Optional[float],
    ) -> asyncio.Future:
        """Start (or join) the one render-and-fill task for ``key``."""
        fut = self._inflight.get(key)
        if fut is not None:
            return fut
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        single_flight = (
            self.cache is not None and self.config.cache.single_flight
        )
        if single_flight:
            self._inflight[key] = fut
        task = loop.create_task(
            self._render_and_fill(key, app, seed, vary, t_arrive,
                                  deadline, fut)
        )
        self._fill_tasks.add(task)
        task.add_done_callback(self._fill_tasks.discard)
        return fut

    async def _render_and_fill(
        self,
        key: str,
        app: str,
        seed: int,
        vary: int,
        t_arrive: float,
        deadline: Optional[float],
        fut: asyncio.Future,
    ) -> None:
        """Render on the pool, fill the cache, resolve the waiters.

        Runs as its own task so it survives every waiter timing out:
        a completed render always lands in the cache (work done for a
        departed client still shields the next client — the inverse
        of the zombie-render loop).
        """
        loop = asyncio.get_running_loop()
        self._renders_pending += 1
        try:
            assert self._pool is not None
            result = await loop.run_in_executor(
                self._pool, self._render_job, app, seed, vary, deadline
            )
        except Exception as exc:
            if not fut.done():
                fut.set_exception(exc)
                # A waiter may have already timed out and gone away;
                # retrieve so the loop never logs "never retrieved".
                fut.exception()
            return
        finally:
            self._renders_pending -= 1
            self._inflight.pop(key, None)
        if result is None:
            self.stats.bump("serve.zombie_renders_avoided")
            if not fut.done():
                fut.set_exception(_RenderExpired(key))
                fut.exception()
            return
        body, _ops, render_s = result
        now = clock.monotonic()
        if self.cache is not None:
            self.cache.fill(key, now, body)
        self.stats.bump("serve.renders")
        if self._aimd is not None:
            self._aimd.record(now - t_arrive)
        self._last_ops = _ops
        if not fut.done():
            fut.set_result(body)

    def _render_job(
        self,
        app: str,
        seed: int,
        vary: int,
        deadline: Optional[float],
    ) -> Optional[tuple[bytes, dict, float]]:
        """Thread-pool body: the dequeue-time shed check + render."""
        t0 = clock.monotonic()
        if deadline is not None and t0 > deadline:
            # Dequeue-time shedding: the requester's deadline passed
            # while this job sat in the pool queue.  Rendering now
            # would be pure zombie work.
            return None
        html, ops = self.render_fn(app, seed, vary)
        return html.encode("utf-8"), ops, clock.monotonic() - t0

    # -- responses -----------------------------------------------------------

    async def _finish(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        route: str,
        cache_state: str,
        t_arrive: float,
        queue_wait_s: float,
        render_s: float,
        shed: str = "",
        keep_alive: bool = True,
    ) -> None:
        if status != 200 and not body:
            reason = REASONS.get(status, "Error")
            detail = f": {shed}" if shed else ""
            body = (
                f"<html><body><h1>{status} {reason}</h1>"
                f"<p>{detail.lstrip(': ')}</p></body></html>"
            ).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {REASONS.get(status, 'Status')}\r\n"
            f"Server: repro-miniphp/1\r\n"
            f"Content-Type: text/html; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"X-Cache: {cache_state}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}"
            f"\r\n\r\n"
        ).encode("ascii")
        status_ok = False
        try:
            writer.write(head + body)
            await asyncio.wait_for(
                writer.drain(), self.config.idle_timeout_s
            )
            status_ok = True
        finally:
            now = clock.monotonic()
            self.stats.bump(f"serve.status_{status}")
            if status_ok:
                self.stats.bump("serve.bytes_out", len(body))
            else:
                self.stats.bump("serve.responses_aborted")
            self.telemetry.record(RequestEvent(
                t_ms=round(self._now_ms(t_arrive), 3),
                route=route,
                status=status if status_ok else 0,
                cache=(
                    cache_state
                    if cache_state in ("hit", "stale", "miss",
                                       "coalesced")
                    else "none"
                ),
                queue_wait_ms=round(max(queue_wait_s, 0.0) * 1000, 3),
                render_ms=round(max(render_s, 0.0) * 1000, 3),
                total_ms=round(max(now - t_arrive, 0.0) * 1000, 3),
                bytes_out=len(body),
                shed=shed,
                ops=dict(getattr(self, "_last_ops", {}))
                if cache_state == "miss" and status == 200 else {},
            ))

    def _index_page(self) -> bytes:
        routes = "".join(
            f'<li><a href="/{name}">/{name}</a></li>'
            for name in sorted(APP_TEMPLATES)
        )
        return (
            "<html><head><title>repro-miniphp</title></head><body>"
            "<h1>MiniPHP live serving path</h1>"
            f"<ul>{routes}</ul>"
            "<p>query params: ?seed=S&amp;vary=V</p>"
            "</body></html>"
        ).encode("utf-8")
