"""Open-loop asyncio load driver for the live serving path.

Drives :class:`repro.serve.httpd.MiniPhpServer` the way
:class:`repro.fleet.overload.OverloadSimulator` drives the event-driven
fleet: arrivals are drawn *open-loop* from a non-homogeneous Poisson
process (diurnal sine × flash-crowd window, thinned against the peak
rate — the same shape machinery, re-costed onto wall-clock seconds)
and dispatched at their scheduled instants regardless of how the
server is coping.  That is the property that makes overload visible:
a closed loop slows down with the server and hides the queue.

The driver holds ``connections`` keep-alive sockets open for the whole
run (one worker per connection, one request outstanding per
connection — HTTP/1.1 without pipelining) and spreads arrivals across
them.  Client-side resilience mirrors PR-1: a per-request timeout, a
:class:`~repro.resilience.policies.RetryBudget` capping retry
amplification, and decorrelated-jitter backoff between attempts.

Everything random comes from a :class:`DeterministicRng` fork — the
*schedule* reproduces exactly under a fixed seed; only the measured
latencies are wall-clock.  File-descriptor budget: one in-process
connection costs two fds (client + server end), so
:func:`max_supported_connections` clamps the requested count against
``RLIMIT_NOFILE`` after raising the soft limit to the hard limit.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.common.rng import DeterministicRng
from repro.common.stats import LatencySummary, summarize_latencies
from repro.core import clock
from repro.resilience.policies import (
    RetryBudget,
    RetryBudgetPolicy,
    RetryPolicy,
)

#: Routes the driver exercises, matching the server's app routes.
ROUTES = ("wordpress", "drupal", "mediawiki")


def max_supported_connections(
    requested: int, headroom: int = 64
) -> int:
    """Clamp a connection count against the process fd budget.

    Raises the ``RLIMIT_NOFILE`` soft limit to the hard limit first
    (CI images often ship soft ≪ hard), then budgets **two** fds per
    connection — in-process runs pay for both the client socket and
    the server's accepted socket — minus ``headroom`` for listeners,
    files, and the interpreter's own fds.
    """
    try:
        import resource
    except ImportError:  # non-POSIX: trust the caller
        return max(1, requested)
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < hard:
        try:
            resource.setrlimit(resource.RLIMIT_NOFILE, (hard, hard))
            soft = hard
        except (ValueError, OSError):
            pass
    budget = (soft - headroom) // 2
    return max(1, min(requested, budget))


@dataclass(frozen=True)
class ArrivalShape:
    """λ(t) for the open-loop process, in wall-clock seconds.

    The same composition as the fleet's
    :class:`~repro.fleet.overload.OverloadConfig`: a base rate, a
    diurnal sine, and a flash-crowd multiplier over a window.
    """

    #: base arrival rate, requests/second
    rate_rps: float = 200.0
    #: run length, seconds
    duration_s: float = 10.0
    #: flash crowd: rate × multiplier inside the window
    flash_multiplier: float = 1.0
    flash_start_s: float = 0.0
    flash_duration_s: float = 0.0
    #: diurnal modulation: rate × (1 + amplitude·sin(2πt/period))
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float = 10.0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.flash_multiplier < 1.0:
            raise ValueError("flash_multiplier must be >= 1")
        if self.flash_start_s < 0 or self.flash_duration_s < 0:
            raise ValueError("flash window cannot be negative")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period_s <= 0:
            raise ValueError("diurnal_period_s must be positive")

    def rate_at(self, t: float) -> float:
        """λ(t) in requests/second."""
        rate = self.rate_rps
        if self.diurnal_amplitude:
            rate *= 1.0 + self.diurnal_amplitude * math.sin(
                2.0 * math.pi * t / self.diurnal_period_s
            )
        end = self.flash_start_s + self.flash_duration_s
        if self.flash_start_s <= t < end:
            rate *= self.flash_multiplier
        return rate

    @property
    def peak_rate(self) -> float:
        return (
            self.rate_rps
            * (1.0 + self.diurnal_amplitude)
            * self.flash_multiplier
        )

    def draw_arrivals(self, rng: DeterministicRng) -> list[float]:
        """Thinning: draw at the peak rate, accept with λ(t)/λ_max.

        The same non-homogeneous Poisson sampler the overload
        simulator uses, so a seed fully determines the offered
        schedule before the first socket opens.
        """
        lam_max = self.peak_rate
        out: list[float] = []
        t = 0.0
        while True:
            t += -math.log(max(rng.random(), 1e-12)) / lam_max
            if t >= self.duration_s:
                return out
            if rng.random() * lam_max <= self.rate_at(t):
                out.append(t)


@dataclass(frozen=True)
class LoadConfig:
    """One load-driver run."""

    #: keep-alive connections to hold open (clamped to the fd budget
    #: by :func:`run_load` unless ``clamp_fds`` is False)
    connections: int = 256
    shape: ArrivalShape = ArrivalShape()
    seed: int = 0
    #: distinct page identities: seeds drawn from [0, seed_space)
    #: (smaller → hotter cache; larger → more render pressure)
    seed_space: int = 32
    #: distinct vary values per seed
    vary_space: int = 2
    #: client-side per-request timeout, seconds
    client_timeout_s: float = 5.0
    #: retry policy for timed-out / 5xx answers (None → never retry)
    retry: Optional[RetryPolicy] = RetryPolicy(max_retries=1)
    retry_budget: Optional[RetryBudgetPolicy] = RetryBudgetPolicy()
    #: wall-clock stand-in for one mean service, seconds (resolves
    #: the retry policy's ``*_services`` backoffs)
    service_estimate_s: float = 0.004
    clamp_fds: bool = True

    def __post_init__(self) -> None:
        if self.connections < 1:
            raise ValueError("connections must be >= 1")
        if self.seed_space < 1 or self.vary_space < 1:
            raise ValueError("seed_space and vary_space must be >= 1")
        if self.client_timeout_s <= 0:
            raise ValueError("client_timeout_s must be positive")
        if self.service_estimate_s <= 0:
            raise ValueError("service_estimate_s must be positive")


@dataclass
class LoadResult:
    """What the open-loop driver observed."""

    #: arrivals the schedule offered
    offered: int = 0
    #: requests that got *any* HTTP answer
    answered: int = 0
    #: requests answered 2xx (goodput numerator)
    ok: int = 0
    #: HTTP status → count
    statuses: dict[str, int] = field(default_factory=dict)
    #: client-side timeouts (no answer within the deadline)
    timeouts: int = 0
    #: connection-level failures (reset, refused, EOF mid-response)
    conn_errors: int = 0
    retries_sent: int = 0
    retries_denied: int = 0
    #: response bytes received
    bytes_in: int = 0
    #: connections actually opened (post fd-clamp)
    connections: int = 0
    #: wall-clock span from first dispatch to last answer, seconds
    duration_s: float = 0.0
    #: end-to-end latency samples of 2xx answers, milliseconds
    latencies_ms: list[float] = field(default_factory=list)
    #: X-Cache header → count, as the client saw them
    cache_outcomes: dict[str, int] = field(default_factory=dict)

    @property
    def goodput_rps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.ok / self.duration_s

    @property
    def goodput_ratio(self) -> float:
        return self.ok / self.offered if self.offered else 0.0

    def latency_summary(self) -> LatencySummary:
        return summarize_latencies(self.latencies_ms)


@dataclass
class _Job:
    """One scheduled arrival."""

    t_s: float
    route: str
    seed: int
    vary: int
    attempt: int = 0
    backoff: float = 0.0


class _Worker:
    """One keep-alive connection draining its share of the schedule."""

    def __init__(
        self,
        host: str,
        port: int,
        config: LoadConfig,
        result: LoadResult,
        budget: Optional[RetryBudget],
        rng: DeterministicRng,
    ) -> None:
        self.host = host
        self.port = port
        self.config = config
        self.result = result
        self.budget = budget
        self.rng = rng
        self.queue: asyncio.Queue = asyncio.Queue()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def run(self, epoch: float) -> None:
        try:
            while True:
                job = await self.queue.get()
                if job is None:
                    return
                await self._run_job(job, epoch)
        finally:
            await self._close()

    async def _connect(self) -> None:
        if self._writer is not None:
            return
        reader, writer = await asyncio.open_connection(
            self.host, self.port
        )
        if self._writer is not None:
            # Another entry connected while we awaited; keep theirs.
            writer.close()
            return
        self._reader, self._writer = reader, writer

    async def _close(self) -> None:
        if self._writer is None:
            return
        writer, self._writer, self._reader = self._writer, None, None
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def _run_job(self, job: _Job, epoch: float) -> None:
        # Open-loop pacing: fire at the scheduled instant, not when
        # the previous request finished.
        delay = (epoch + job.t_s) - clock.monotonic()
        if delay > 0:
            await clock.sleep(delay)
        while True:
            status = await self._attempt(job)
            if status is not None and 200 <= status < 300:
                if self.budget is not None:
                    self.budget.record_success()
                return
            if not self._should_retry(job, status):
                return
            job.attempt += 1
            self.result.retries_sent += 1
            job.backoff = self._next_backoff(job)
            await clock.sleep(job.backoff)

    def _should_retry(self, job: _Job, status: Optional[int]) -> bool:
        """Retry only failures a retry can fix, inside the budget."""
        retry = self.config.retry
        if retry is None or job.attempt >= retry.max_retries:
            return False
        if status is not None and status < 500:
            return False  # 4xx: our request is wrong; retrying spams
        if self.budget is not None and not self.budget.try_spend():
            self.result.retries_denied += 1
            return False
        return True

    def _next_backoff(self, job: _Job) -> float:
        retry = self.config.retry
        assert retry is not None
        services = retry.next_backoff(job.backoff, self.rng)
        return services * self.config.service_estimate_s

    async def _attempt(self, job: _Job) -> Optional[int]:
        """One request/response exchange; None when no answer came."""
        t0 = clock.monotonic()
        try:
            status, body_len, cache = await asyncio.wait_for(
                self._exchange(job), self.config.client_timeout_s
            )
        except asyncio.TimeoutError:
            self.result.timeouts += 1
            await self._close()  # the stream is mid-response: poison
            return None
        except (ConnectionError, OSError, asyncio.IncompleteReadError,
                EOFError):
            self.result.conn_errors += 1
            await self._close()
            return None
        latency_ms = (clock.monotonic() - t0) * 1000.0
        self.result.answered += 1
        key = str(status)
        self.result.statuses[key] = \
            self.result.statuses.get(key, 0) + 1
        self.result.bytes_in += body_len
        if cache:
            self.result.cache_outcomes[cache] = \
                self.result.cache_outcomes.get(cache, 0) + 1
        if 200 <= status < 300:
            self.result.ok += 1
            self.result.latencies_ms.append(latency_ms)
        return status

    async def _exchange(self, job: _Job) -> tuple[int, int, str]:
        await self._connect()
        assert self._reader is not None and self._writer is not None
        target = f"/{job.route}?seed={job.seed}&vary={job.vary}"
        request = (
            f"GET {target} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("ascii")
        self._writer.write(request)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise EOFError("server closed the connection")
        parts = status_line.decode("ascii", "replace").split(" ", 2)
        status = int(parts[1])
        content_length = 0
        cache = ""
        close_after = False
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                raise EOFError("connection closed mid-headers")
            name, _, value = \
                raw.decode("latin-1").partition(":")
            name = name.strip().lower()
            value = value.strip()
            if name == "content-length":
                content_length = int(value)
            elif name == "x-cache":
                cache = value
            elif name == "connection" and value.lower() == "close":
                close_after = True
        body = await self._reader.readexactly(content_length)
        if close_after:
            await self._close()
        return status, len(body), cache


async def run_load(
    host: str, port: int, config: Optional[LoadConfig] = None
) -> LoadResult:
    """Run one open-loop load session against a live server."""
    config = config or LoadConfig()
    n_conns = (
        max_supported_connections(config.connections)
        if config.clamp_fds else config.connections
    )
    rng = DeterministicRng(config.seed).fork("loadclient")
    arrivals = config.shape.draw_arrivals(rng.fork("arrivals"))
    job_rng = rng.fork("jobs")
    jobs = [
        _Job(
            t_s=t,
            route=ROUTES[job_rng.randint(0, len(ROUTES) - 1)],
            seed=job_rng.randint(0, config.seed_space - 1),
            vary=job_rng.randint(0, config.vary_space - 1),
        )
        for t in arrivals
    ]
    result = LoadResult(offered=len(jobs), connections=n_conns)
    budget = (
        RetryBudget(config.retry_budget)
        if config.retry_budget is not None and config.retry is not None
        else None
    )
    workers = [
        _Worker(host, port, config, result, budget,
                rng.fork(f"worker-{i}"))
        for i in range(n_conns)
    ]
    # Round-robin assignment keeps per-connection schedules balanced
    # and deterministic; a busy connection delays only its own share.
    for i, job in enumerate(jobs):
        workers[i % n_conns].queue.put_nowait(job)
    for worker in workers:
        worker.queue.put_nowait(None)
    epoch = clock.monotonic()
    tasks = [
        asyncio.ensure_future(worker.run(epoch)) for worker in workers
    ]
    await asyncio.gather(*tasks)
    result.duration_s = clock.monotonic() - epoch
    return result
