"""Orchestrate one live serving run: server + load + oracle + report.

``python -m repro serve`` lands here.  The flow:

1. start a :class:`~repro.serve.httpd.MiniPhpServer` on an ephemeral
   port,
2. drive it with the open-loop :func:`~repro.serve.loadclient.run_load`
   (scaled by ``--smoke``/``--bench``),
3. replay the pinned served-bytes differential oracle — every page
   fetched over HTTP must be byte-identical to a direct
   :func:`~repro.workloads.templates.render_http_page` render,
4. fuse both views into a schema-validated ``repro-serve/1`` payload,
   write ``benchmarks/out/serve.txt`` + the telemetry JSONL, and (for
   ``--bench``) append a ``repro-serve-history/1`` row to
   ``BENCH_history.jsonl``.

Scale ladder (all open-loop):

==========  ===========  ======  ========  =====================
mode        connections  rps     duration  purpose
==========  ===========  ======  ========  =====================
(default)   64           150     2 s       self-test
bench+smoke 1 000        400     6 s       CI gate (blocking)
bench       10 000       1 500   20 s      full harness
==========  ===========  ======  ========  =====================

The full bench *requests* 10k connections; the driver clamps to the
``RLIMIT_NOFILE`` budget (two fds per in-process connection), so on a
20k-fd box it holds ~9.9k.  The smoke gate asserts ≥1k held
connections — the acceptance bar CI enforces on every push.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Any, Optional

from repro.common.rng import DEFAULT_SEED
from repro.core.perf import OUT_DIR
from repro.serve.httpd import MiniPhpServer, ServeConfig
from repro.serve.loadclient import (
    ArrivalShape,
    LoadConfig,
    LoadResult,
    run_load,
)
from repro.serve.report import (
    ServeReport,
    append_serve_history,
    build_report,
    format_serve_report,
    validate_serve_payload,
)
from repro.workloads.templates import APP_TEMPLATES, render_http_page

#: The pinned oracle schedule: every route, two seeds, two varies.
PINNED_ORACLE_CASES: tuple[tuple[str, int, int], ...] = tuple(
    (app, seed, vary)
    for app in sorted(APP_TEMPLATES)
    for seed in (0, 7)
    for vary in (0, 1)
)

#: Smoke CI must hold at least this many concurrent connections.
SMOKE_MIN_CONNECTIONS = 1_000
#: The full bench asks for this many (fd budget may clamp slightly).
BENCH_CONNECTIONS = 10_000


def oracle_server_config() -> ServeConfig:
    """A server shaped for determinism, not overload realism.

    No deadline, no adaptive limit, effectively unbounded admission —
    the oracle asks "are the bytes right", and a 503/504 would only
    say "the laptop was busy".  The fragment cache stays *on* so the
    oracle also proves cached bytes equal freshly rendered bytes.
    """
    return ServeConfig(
        deadline_s=None,
        adaptive=None,
        max_pending_renders=1_000_000,
    )


async def _fetch_page(
    host: str, port: int, app: str, seed: int, vary: int
) -> tuple[int, bytes]:
    """One close-delimited GET; returns (status, body bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        request = (
            f"GET /{app}?seed={seed}&vary={vary} HTTP/1.1\r\n"
            f"Host: {host}\r\nConnection: close\r\n\r\n"
        ).encode("ascii")
        writer.write(request)
        await writer.drain()
        raw = await reader.read(-1)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
    head, sep, body = raw.partition(b"\r\n\r\n")
    if not sep:
        raise AssertionError(
            f"GET /{app}?seed={seed}&vary={vary}: no header/body "
            f"separator in {raw[:80]!r}"
        )
    status = int(head.split(b" ", 2)[1])
    return status, body


#: per-fetch deadline inside the oracle session, seconds
_ORACLE_TIMEOUT_S = 30.0


async def _oracle_session(
    cases: list[tuple[str, int, int, bytes]],
    config: Optional[ServeConfig],
) -> list[dict]:
    server = MiniPhpServer(config or oracle_server_config())
    await server.start()
    mismatches: list[dict] = []
    try:
        for app, seed, vary, expected in cases:
            # Twice: the first render fills the fragment cache, the
            # second serves from it — both must be byte-identical.
            for pass_name in ("render", "cached"):
                status, body = await asyncio.wait_for(
                    _fetch_page(
                        server.config.host, server.port,
                        app, seed, vary,
                    ),
                    _ORACLE_TIMEOUT_S,
                )
                if status != 200:
                    mismatches.append({
                        "app": app, "seed": seed, "vary": vary,
                        "pass": pass_name,
                        "error": f"HTTP {status} instead of 200",
                    })
                    break
                if body != expected:
                    mismatches.append({
                        "app": app, "seed": seed, "vary": vary,
                        "pass": pass_name,
                        "error": (
                            f"served {len(body)} bytes != direct "
                            f"render {len(expected)} bytes"
                            if len(body) != len(expected) else
                            "served bytes differ from direct render"
                        ),
                    })
                    break
    finally:
        await server.stop()
    return mismatches


def serve_oracle_mismatches(
    cases: Optional[list[tuple[str, int, int]]] = None,
    config: Optional[ServeConfig] = None,
) -> list[dict]:
    """Run the served-bytes differential oracle; [] means conformant.

    Each case is ``(app, seed, vary)``.  For every case the page is
    fetched over a real HTTP connection twice (fresh render, then the
    cached fragment) and compared byte-for-byte against the direct
    interpreter render — the conformance subsystem's entry point
    (:func:`repro.conformance.oracles.run_serve_oracle` wraps this).
    """
    case_list = list(cases) if cases is not None \
        else list(PINNED_ORACLE_CASES)
    # Direct renders happen here, off the event loop: the interpreter
    # is CPU-heavy and must not stall the oracle session's coroutine.
    expanded = [
        (app, seed, vary,
         render_http_page(app, seed, vary)[0].encode("utf-8"))
        for app, seed, vary in case_list
    ]
    return asyncio.run(_oracle_session(expanded, config))


def _bench_configs(
    smoke: bool, seed: int
) -> tuple[ServeConfig, LoadConfig]:
    if smoke:
        shape = ArrivalShape(
            rate_rps=400.0, duration_s=6.0,
            flash_multiplier=2.5, flash_start_s=2.0,
            flash_duration_s=1.5,
            diurnal_amplitude=0.3, diurnal_period_s=6.0,
        )
        load = LoadConfig(
            connections=SMOKE_MIN_CONNECTIONS, shape=shape,
            seed=seed, seed_space=24, vary_space=2,
        )
    else:
        shape = ArrivalShape(
            rate_rps=1_500.0, duration_s=20.0,
            flash_multiplier=2.0, flash_start_s=8.0,
            flash_duration_s=4.0,
            diurnal_amplitude=0.3, diurnal_period_s=20.0,
        )
        load = LoadConfig(
            connections=BENCH_CONNECTIONS, shape=shape,
            seed=seed, seed_space=64, vary_space=2,
        )
    return ServeConfig(), load


def _selftest_configs(seed: int) -> tuple[ServeConfig, LoadConfig]:
    shape = ArrivalShape(rate_rps=150.0, duration_s=2.0)
    load = LoadConfig(
        connections=64, shape=shape, seed=seed,
        seed_space=12, vary_space=2,
    )
    return ServeConfig(), load


async def _load_session(
    server_config: ServeConfig, load_config: LoadConfig
) -> tuple[LoadResult, MiniPhpServer]:
    server = MiniPhpServer(server_config)
    await server.start()
    try:
        result = await run_load(
            server.config.host, server.port, load_config
        )
    finally:
        await server.stop()
    return result, server


def run_serve(
    bench: bool = False,
    smoke: bool = False,
    seed: int = DEFAULT_SEED,
    out_dir: Optional[Path] = None,
    history_path: Optional[Path] = None,
    backend: str = "optimized",
) -> dict[str, Any]:
    """One full serving run; returns the validated payload.

    ``backend`` selects the accelerator backend the whole run (load
    session *and* served-bytes oracle) executes on, so the live SLO
    gate prices each registered backend in wall-clock seconds.

    Raises :class:`AssertionError` when the served-bytes oracle finds
    a divergence, and (under ``--bench``) when the driver could not
    hold the smoke connection floor.
    """
    from repro.accel.registry import backend_mode

    mode = "bench" if bench else "smoke"
    server_config, load_config = (
        _bench_configs(smoke, seed) if bench
        else _selftest_configs(seed)
    )
    with backend_mode(backend):
        result, server = asyncio.run(
            _load_session(server_config, load_config)
        )
        report: ServeReport = build_report(
            mode, seed, result, server, backend=backend
        )
        mismatches = serve_oracle_mismatches()
    if mismatches:
        raise AssertionError(
            f"served-bytes oracle found {len(mismatches)} "
            f"divergence(s); first: {mismatches[0]}"
        )
    report.oracle_ok = True
    if bench and result.connections < min(
        SMOKE_MIN_CONNECTIONS, load_config.connections
    ):
        raise AssertionError(
            f"driver held only {result.connections} connections; the "
            f"bench gate requires >= "
            f"{min(SMOKE_MIN_CONNECTIONS, load_config.connections)}"
        )
    payload = report.to_payload()
    validate_serve_payload(payload)
    out = Path(out_dir) if out_dir is not None else OUT_DIR
    out.mkdir(parents=True, exist_ok=True)
    (out / "serve.txt").write_text(
        format_serve_report(payload) + "\n"
    )
    server.telemetry.write_jsonl(out / "serve_telemetry.jsonl")
    if bench:
        append_serve_history(payload, path=history_path)
    return payload
