"""ServeReport: what one live serving run measured, schema-checked.

The wall-clock sibling of the event-driven
:class:`~repro.fleet.overload.OverloadReport`: goodput against the
offered open-loop schedule, the latency tail (p50/p99/p999 of
milliseconds, via the repo's one nearest-rank percentile), cache hit
ratio, shed/timeout accounting, and an SLO verdict at the simulators'
95% goodput bar.  ``to_payload`` emits the ``repro-serve/1`` document
(written to ``benchmarks/out/serve.txt`` + validated by the CI smoke
gate); :func:`append_serve_history` adds one ``repro-serve-history/1``
row to the same append-only ``BENCH_history.jsonl`` trajectory the
perf harness uses, so serve throughput regressions are visible
cross-PR next to kernel speedups.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.common.stats import LatencySummary
from repro.core import clock
from repro.core.perf import HISTORY_PATH
from repro.core.report import format_table, pct

SERVE_SCHEMA = "repro-serve/1"
SERVE_HISTORY_SCHEMA = "repro-serve-history/1"

#: The SLO bar: the simulators' sustained-goodput target (the
#: fraction of offered requests that must be answered 2xx).
SLO_GOODPUT_RATIO = 0.95


@dataclass
class ServeReport:
    """One live run, summarized."""

    mode: str = "smoke"
    seed: int = 0
    #: which accelerator backend's kernels served the run
    backend: str = "optimized"
    #: keep-alive connections the driver held open
    connections: int = 0
    #: peak simultaneous connections the *server* saw
    peak_connections: int = 0
    offered: int = 0
    answered: int = 0
    ok: int = 0
    goodput_rps: float = 0.0
    goodput_ratio: float = 0.0
    latency: LatencySummary = field(default_factory=LatencySummary)
    cache_hit_ratio: float = 0.0
    #: X-Cache outcome → count, as the client saw them
    cache_outcomes: dict[str, int] = field(default_factory=dict)
    #: HTTP status → count
    statuses: dict[str, int] = field(default_factory=dict)
    #: server-side 503s (admission + adaptive limit)
    shed: int = 0
    #: server-side 504s + client-side timeouts
    timeouts: int = 0
    client_conn_errors: int = 0
    retries_sent: int = 0
    retries_denied: int = 0
    #: synchronous + background renders the server performed
    renders: int = 0
    #: miss requests coalesced onto an in-flight render
    coalesced: int = 0
    #: queued renders skipped because their requester's deadline
    #: passed (the dequeue-time zombie shed)
    zombie_renders_avoided: int = 0
    bytes_in: int = 0
    #: telemetry-ring overflow: events the bounded log discarded
    #: (oldest-first).  Nonzero means the persisted JSONL is a
    #: truncated view of the run — the calibration loop refuses such
    #: streams beyond its drop bound instead of fitting a biased tail.
    telemetry_dropped: int = 0
    duration_s: float = 0.0
    slo_target: float = SLO_GOODPUT_RATIO
    slo_ok: bool = False
    #: the served-bytes differential oracle passed for this run
    oracle_ok: bool = False

    def to_payload(self) -> dict[str, Any]:
        payload = {"schema": SERVE_SCHEMA}
        payload.update(asdict(self))
        payload["latency"] = asdict(self.latency)
        payload["host"] = {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        }
        return payload


def build_report(
    mode: str, seed: int, load_result: Any, server: Any,
    backend: str = "optimized",
) -> ServeReport:
    """Fuse the driver's and the server's views into one report."""
    stats = server.stats
    shed = (
        stats.get("serve.shed_admission")
        + stats.get("serve.shed_adaptive")
    )
    timeouts = stats.get("serve.timeouts") + load_result.timeouts
    cache_hit_ratio = (
        server.cache.hit_ratio if server.cache is not None else 0.0
    )
    report = ServeReport(
        mode=mode,
        seed=seed,
        backend=backend,
        connections=load_result.connections,
        peak_connections=server.peak_connections,
        offered=load_result.offered,
        answered=load_result.answered,
        ok=load_result.ok,
        goodput_rps=load_result.goodput_rps,
        goodput_ratio=load_result.goodput_ratio,
        latency=load_result.latency_summary(),
        cache_hit_ratio=cache_hit_ratio,
        cache_outcomes=dict(sorted(load_result.cache_outcomes.items())),
        statuses=dict(sorted(load_result.statuses.items())),
        shed=shed,
        timeouts=timeouts,
        client_conn_errors=load_result.conn_errors,
        retries_sent=load_result.retries_sent,
        retries_denied=load_result.retries_denied,
        renders=stats.get("serve.renders"),
        coalesced=stats.get("serve.coalesced"),
        zombie_renders_avoided=stats.get(
            "serve.zombie_renders_avoided"
        ),
        bytes_in=load_result.bytes_in,
        telemetry_dropped=server.telemetry.dropped,
        duration_s=load_result.duration_s,
    )
    report.slo_ok = report.goodput_ratio >= report.slo_target
    return report


def validate_serve_payload(payload: dict[str, Any]) -> None:
    """Schema check for one serve payload (the CI smoke gate)."""
    if payload.get("schema") != SERVE_SCHEMA:
        raise ValueError(
            f"unexpected serve schema: {payload.get('schema')!r}"
        )
    if payload.get("mode") not in ("smoke", "bench"):
        raise ValueError(
            f"serve payload ['mode'] must be smoke|bench, "
            f"got {payload.get('mode')!r}"
        )
    backend = payload.get("backend", "optimized")
    if not isinstance(backend, str) or not backend:
        raise ValueError(
            "serve payload ['backend'] must be a non-empty string"
        )
    if not isinstance(payload.get("seed"), int):
        raise ValueError("serve payload ['seed'] must be an int")
    for name in ("offered", "answered", "ok", "connections",
                 "peak_connections", "shed", "timeouts", "renders",
                 "coalesced", "bytes_in", "telemetry_dropped",
                 "client_conn_errors", "retries_sent",
                 "retries_denied", "zombie_renders_avoided"):
        value = payload.get(name)
        if not isinstance(value, int) or value < 0:
            raise ValueError(
                f"serve payload [{name!r}] must be a non-negative "
                f"int, got {value!r}"
            )
    for name in ("cache_outcomes", "statuses"):
        block = payload.get(name)
        if not isinstance(block, dict) or any(
            not isinstance(v, int) or v < 0 for v in block.values()
        ):
            raise ValueError(
                f"serve payload [{name!r}] must map outcomes to "
                f"non-negative ints"
            )
    for name in ("goodput_rps", "goodput_ratio", "cache_hit_ratio",
                 "duration_s"):
        value = payload.get(name)
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(
                f"serve payload [{name!r}] must be a non-negative "
                f"number, got {value!r}"
            )
    if not 0.0 <= payload["goodput_ratio"] <= 1.0:
        raise ValueError("serve payload ['goodput_ratio'] not in [0,1]")
    latency = payload.get("latency")
    if not isinstance(latency, dict):
        raise ValueError("serve payload missing 'latency' mapping")
    for name in ("count", "mean", "p50", "p99", "p999"):
        value = latency.get(name)
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(
                f"serve payload ['latency'][{name!r}] must be a "
                f"non-negative number, got {value!r}"
            )
    if payload["ok"] > 0 and latency["count"] == 0:
        raise ValueError(
            "serve payload served requests but has no latency samples"
        )
    slo_target = payload.get("slo_target")
    if not isinstance(slo_target, (int, float)) or \
            not 0.0 < slo_target <= 1.0:
        raise ValueError(
            f"serve payload ['slo_target'] must be in (0, 1], "
            f"got {slo_target!r}"
        )
    for name in ("slo_ok", "oracle_ok"):
        if not isinstance(payload.get(name), bool):
            raise ValueError(f"serve payload [{name!r}] must be a bool")
    host = payload.get("host")
    if not isinstance(host, dict) or not host.get("python"):
        raise ValueError("serve payload ['host'] must name the python")


def serve_history_row(payload: dict[str, Any]) -> dict[str, Any]:
    """The trajectory row for one serve payload."""
    return {
        "schema": SERVE_HISTORY_SCHEMA,
        "recorded_utc": clock.utc_stamp(),
        "mode": payload["mode"],
        "seed": payload["seed"],
        "backend": payload.get("backend", "optimized"),
        "host": dict(payload["host"]),
        "connections": payload["connections"],
        "offered": payload["offered"],
        "goodput_rps": payload["goodput_rps"],
        "goodput_ratio": payload["goodput_ratio"],
        "p99_ms": payload["latency"]["p99"],
        "cache_hit_ratio": payload["cache_hit_ratio"],
        "slo_ok": payload["slo_ok"],
    }


def validate_serve_history_row(row: dict[str, Any]) -> None:
    """Schema check for one ``repro-serve-history/1`` row."""
    if row.get("schema") != SERVE_HISTORY_SCHEMA:
        raise ValueError(
            f"unexpected serve-history schema: {row.get('schema')!r}"
        )
    if row.get("mode") not in ("smoke", "bench"):
        raise ValueError("serve-history row ['mode'] must be smoke|bench")
    for name in ("connections", "offered"):
        value = row.get(name)
        if not isinstance(value, int) or value < 0:
            raise ValueError(
                f"serve-history row [{name!r}] must be a "
                f"non-negative int, got {value!r}"
            )
    for name in ("goodput_rps", "goodput_ratio", "p99_ms",
                 "cache_hit_ratio"):
        value = row.get(name)
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(
                f"serve-history row [{name!r}] must be a "
                f"non-negative number, got {value!r}"
            )
    if not isinstance(row.get("slo_ok"), bool):
        raise ValueError("serve-history row ['slo_ok'] must be a bool")
    if not isinstance(row.get("seed"), int):
        raise ValueError("serve-history row ['seed'] must be an int")
    if "backend" in row:
        backend = row["backend"]
        if not isinstance(backend, str) or not backend:
            raise ValueError(
                "serve-history row ['backend'] must be a non-empty "
                "string"
            )
    host = row.get("host")
    if not isinstance(host, dict) or not host.get("python"):
        raise ValueError("serve-history row ['host'] must name the python")
    if not isinstance(row.get("recorded_utc"), str):
        raise ValueError(
            "serve-history row ['recorded_utc'] must be a string"
        )


def append_serve_history(
    payload: dict[str, Any], path: Optional[Path] = None
) -> Path:
    """Append one serve row to the shared trajectory file."""
    row = serve_history_row(payload)
    validate_serve_history_row(row)
    path = path or HISTORY_PATH
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def format_serve_report(payload: dict[str, Any]) -> str:
    """Human-readable serve summary (``benchmarks/out/serve.txt``)."""
    latency = payload["latency"]
    rows = [
        ["mode", payload["mode"]],
        ["seed", str(payload["seed"])],
        ["backend", payload.get("backend", "optimized")],
        ["connections", str(payload["connections"])],
        ["peak server conns", str(payload["peak_connections"])],
        ["offered", str(payload["offered"])],
        ["answered", str(payload["answered"])],
        ["2xx (goodput)", str(payload["ok"])],
        ["goodput", f"{payload['goodput_rps']:.1f} req/s"],
        ["goodput ratio", pct(payload["goodput_ratio"])],
        ["p50 / p99 / p999",
         f"{latency['p50']:.2f} / {latency['p99']:.2f} / "
         f"{latency['p999']:.2f} ms"],
        ["cache hit ratio", pct(payload["cache_hit_ratio"])],
        ["shed (503)", str(payload["shed"])],
        ["timeouts", str(payload["timeouts"])],
        ["renders", str(payload["renders"])],
        ["coalesced misses", str(payload["coalesced"])],
        ["zombie renders avoided",
         str(payload["zombie_renders_avoided"])],
        ["retries sent / denied",
         f"{payload['retries_sent']} / {payload['retries_denied']}"],
        ["telemetry dropped",
         str(payload.get("telemetry_dropped", 0))],
        ["duration", f"{payload['duration_s']:.2f} s"],
        ["SLO (goodput >= " + pct(payload["slo_target"], 0) + ")",
         "PASS" if payload["slo_ok"] else "FAIL"],
    ]
    return format_table(
        ["metric", "value"], rows,
        title="live serving path (wall-clock)",
    )
