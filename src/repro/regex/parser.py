"""Regular-expression parser (PCRE subset → AST).

The three PHP applications drive their texturize/sanitize passes
through PCRE.  This parser covers the constructs those call sites use:
literals, escapes, character classes with ranges and negation, ``.``,
alternation, grouping (capturing and ``(?:...)``), the standard
quantifiers (``* + ? {m} {m,} {m,n}``), and the ``^``/``$`` anchors.

Grammar (recursive descent)::

    pattern     := alternation
    alternation := concat ('|' concat)*
    concat      := repeat*
    repeat      := atom quantifier?
    atom        := literal | class | '.' | '(' pattern ')' | anchor
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.regex.charset import DIGIT, SPACE, WORD, CharSet


class RegexSyntaxError(ValueError):
    """Raised for patterns outside the supported subset."""

    def __init__(self, pattern: str, position: int, message: str) -> None:
        super().__init__(f"{message} at position {position} in {pattern!r}")
        self.pattern = pattern
        self.position = position


# -- AST --------------------------------------------------------------------------


@dataclass(frozen=True)
class Node:
    """Base class for AST nodes."""


@dataclass(frozen=True)
class CharNode(Node):
    """Match any single character in ``chars``."""

    chars: CharSet
    #: for negated classes, the excluded members before complementing.
    #: ``(?i)`` must close *this* set under case and then complement —
    #: folding the complement would re-admit the excluded letters
    #: (``(?i)[^a]`` matching ``'a'`` via ``'A'``).
    negated_of: CharSet | None = None


@dataclass(frozen=True)
class ConcatNode(Node):
    parts: tuple[Node, ...]


@dataclass(frozen=True)
class AltNode(Node):
    options: tuple[Node, ...]


@dataclass(frozen=True)
class RepeatNode(Node):
    """``child`` repeated between ``lo`` and ``hi`` times (hi=None → ∞)."""

    child: Node
    lo: int
    hi: int | None


@dataclass(frozen=True)
class AnchorNode(Node):
    """``^`` (kind='start') or ``$`` (kind='end')."""

    kind: str


@dataclass(frozen=True)
class EmptyNode(Node):
    """Matches the empty string (e.g. an empty alternation branch)."""


_ESCAPE_CLASSES: dict[str, CharSet] = {
    "d": DIGIT,
    "D": DIGIT.complement(),
    "w": WORD,
    "W": WORD.complement(),
    "s": SPACE,
    "S": SPACE.complement(),
}

_ESCAPE_LITERALS: dict[str, str] = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "f": "\f",
    "v": "\x0b",
    "0": "\0",
    "a": "\x07",
    "e": "\x1b",
}

#: Metacharacters that ``\`` makes literal.
_META = set("\\^$.|?*+()[]{}/-")

#: Hard cap on counted repetition so pathological patterns can't explode
#: the NFA.
MAX_COUNTED_REPEAT = 64


class RegexParser:
    """Single-use recursive-descent parser for one pattern string."""

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.pos = 0

    # -- scanning helpers ---------------------------------------------------------

    def _peek(self) -> str | None:
        return self.pattern[self.pos] if self.pos < len(self.pattern) else None

    def _take(self) -> str:
        ch = self._peek()
        if ch is None:
            raise RegexSyntaxError(self.pattern, self.pos, "unexpected end")
        self.pos += 1
        return ch

    def _expect(self, ch: str) -> None:
        if self._peek() != ch:
            raise RegexSyntaxError(self.pattern, self.pos, f"expected {ch!r}")
        self.pos += 1

    def _error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(self.pattern, self.pos, message)

    # -- grammar -------------------------------------------------------------------

    def parse(self) -> Node:
        node = self._alternation()
        if self.pos != len(self.pattern):
            raise self._error("trailing characters")
        return node

    def _alternation(self) -> Node:
        options = [self._concat()]
        while self._peek() == "|":
            self._take()
            options.append(self._concat())
        if len(options) == 1:
            return options[0]
        return AltNode(tuple(options))

    def _concat(self) -> Node:
        parts: list[Node] = []
        while True:
            ch = self._peek()
            if ch is None or ch in "|)":
                break
            parts.append(self._repeat())
        if not parts:
            return EmptyNode()
        if len(parts) == 1:
            return parts[0]
        return ConcatNode(tuple(parts))

    def _repeat(self) -> Node:
        atom = self._atom()
        ch = self._peek()
        if ch == "*":
            self._take()
            return RepeatNode(atom, 0, None)
        if ch == "+":
            self._take()
            return RepeatNode(atom, 1, None)
        if ch == "?":
            self._take()
            return RepeatNode(atom, 0, 1)
        if ch == "{":
            saved = self.pos
            counted = self._try_counted()
            if counted is None:
                self.pos = saved  # literal '{'
                return atom
            lo, hi = counted
            if isinstance(atom, AnchorNode):
                raise self._error("cannot repeat an anchor")
            return RepeatNode(atom, lo, hi)
        return atom

    def _try_counted(self) -> tuple[int, int | None] | None:
        """Parse ``{m}``/``{m,}``/``{m,n}``; None when not a quantifier."""
        self._expect("{")
        digits = ""
        while self._peek() is not None and self._peek().isdigit():
            digits += self._take()
        if not digits:
            return None
        lo = int(digits)
        hi: int | None = lo
        if self._peek() == ",":
            self._take()
            digits = ""
            while self._peek() is not None and self._peek().isdigit():
                digits += self._take()
            hi = int(digits) if digits else None
        if self._peek() != "}":
            return None
        self._take()
        if hi is not None and hi < lo:
            raise self._error("bad repeat interval {m,n} with n < m")
        if lo > MAX_COUNTED_REPEAT or (hi or 0) > MAX_COUNTED_REPEAT:
            raise self._error(f"counted repeat exceeds cap {MAX_COUNTED_REPEAT}")
        return lo, hi

    def _atom(self) -> Node:
        ch = self._peek()
        if ch is None:
            raise self._error("expected an atom")
        if ch == "(":
            self._take()
            if self._peek() == "?":
                self._take()
                mark = self._peek()
                if mark == ":":
                    self._take()
                else:
                    raise self._error(
                        "only (?:...) groups are supported in this subset"
                    )
            inner = self._alternation()
            self._expect(")")
            return inner
        if ch == "[":
            return self._char_class()
        if ch == ".":
            self._take()
            return CharNode(CharSet.dot())
        if ch == "^":
            self._take()
            return AnchorNode("start")
        if ch == "$":
            self._take()
            return AnchorNode("end")
        if ch == "\\":
            self._take()
            return self._escape()
        if ch in ")|":
            raise self._error(f"unexpected {ch!r}")
        if ch in "*+?":
            raise self._error(f"quantifier {ch!r} with nothing to repeat")
        self._take()
        return CharNode(CharSet.of(ch))

    def _escape(self) -> Node:
        ch = self._take()
        if ch in _ESCAPE_CLASSES:
            return CharNode(_ESCAPE_CLASSES[ch])
        if ch in _ESCAPE_LITERALS:
            return CharNode(CharSet.of(_ESCAPE_LITERALS[ch]))
        if ch == "x":
            hex_digits = ""
            for _ in range(2):
                nxt = self._peek()
                if nxt is None or nxt not in "0123456789abcdefABCDEF":
                    raise self._error("\\x needs two hex digits")
                hex_digits += self._take()
            return CharNode(CharSet.of(chr(int(hex_digits, 16))))
        if not ch.isalnum():
            # PCRE: a backslash before any non-alphanumeric makes it
            # literal, metacharacter or not.
            return CharNode(CharSet.of(ch))
        raise self._error(f"unsupported escape \\{ch}")

    def _char_class(self) -> Node:
        self._expect("[")
        negate = False
        if self._peek() == "^":
            self._take()
            negate = True
        members = CharSet.empty()
        first = True
        while True:
            ch = self._peek()
            if ch is None:
                raise self._error("unterminated character class")
            if ch == "]" and not first:
                self._take()
                break
            first = False
            lo = self._class_char()
            if self._peek() == "-" and self.pos + 1 < len(self.pattern) and \
                    self.pattern[self.pos + 1] != "]":
                self._take()  # '-'
                hi = self._class_char()
                if isinstance(lo, CharSet) or isinstance(hi, CharSet):
                    raise self._error("ranges need plain characters")
                members = members.union(CharSet.char_range(lo, hi))
            else:
                if isinstance(lo, CharSet):
                    members = members.union(lo)
                else:
                    members = members.union(CharSet.of(lo))
        if negate:
            complemented = members.complement()
            if complemented.is_empty():
                raise self._error("empty character class")
            return CharNode(complemented, negated_of=members)
        if members.is_empty():
            raise self._error("empty character class")
        return CharNode(members)

    def _class_char(self) -> str | CharSet:
        """One class member: a literal char, escape, or named class."""
        ch = self._take()
        if ch != "\\":
            return ch
        esc = self._take()
        if esc in _ESCAPE_CLASSES:
            return _ESCAPE_CLASSES[esc]
        if esc in _ESCAPE_LITERALS:
            return _ESCAPE_LITERALS[esc]
        if esc == "x":
            hex_digits = self._take() + self._take()
            return chr(int(hex_digits, 16))
        if not esc.isalnum():
            return esc
        raise self._error(f"unsupported escape \\{esc} in class")


def parse(pattern: str) -> Node:
    """Parse ``pattern`` into an AST; raises :class:`RegexSyntaxError`."""
    return RegexParser(pattern).parse()
