"""Thompson NFA construction.

Converts the parser's AST into a nondeterministic finite automaton
with character-set edges and epsilon edges.  Anchors are supported at
the pattern boundaries only (``^`` first, ``$`` last), which covers
the texturize/sanitize patterns the PHP workloads use; they surface as
flags on the built NFA rather than automaton states.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.regex.charset import CharSet
from repro.regex.parser import (
    AltNode,
    AnchorNode,
    CharNode,
    ConcatNode,
    EmptyNode,
    Node,
    RegexSyntaxError,
    RepeatNode,
)

#: Guardrail against state-space blowups from counted repetition.
MAX_NFA_STATES = 20_000


@dataclass
class NfaState:
    """One NFA state: char-set edges plus epsilon edges."""

    id: int
    edges: list[tuple[CharSet, int]] = field(default_factory=list)
    epsilons: list[int] = field(default_factory=list)


@dataclass
class Nfa:
    """A complete automaton with a single start and single accept state."""

    states: list[NfaState]
    start: int
    accept: int
    anchored_start: bool = False
    anchored_end: bool = False

    @property
    def state_count(self) -> int:
        return len(self.states)

    def epsilon_closure(self, seed: frozenset[int]) -> frozenset[int]:
        """All states reachable from ``seed`` via epsilon edges."""
        stack = list(seed)
        seen = set(seed)
        while stack:
            sid = stack.pop()
            for nxt in self.states[sid].epsilons:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return frozenset(seen)


class _Builder:
    """Thompson construction with fresh-state bookkeeping."""

    def __init__(self, pattern: str, fold_case: bool = False) -> None:
        self.pattern = pattern
        self.fold_case = fold_case
        self.states: list[NfaState] = []

    def fresh(self) -> int:
        if len(self.states) >= MAX_NFA_STATES:
            raise RegexSyntaxError(self.pattern, 0, "pattern too large")
        state = NfaState(id=len(self.states))
        self.states.append(state)
        return state.id

    def build(self, node: Node) -> tuple[int, int]:
        """Return (start, accept) fragment for ``node``."""
        if isinstance(node, EmptyNode):
            s = self.fresh()
            a = self.fresh()
            self.states[s].epsilons.append(a)
            return s, a
        if isinstance(node, CharNode):
            s = self.fresh()
            a = self.fresh()
            if not self.fold_case:
                chars = node.chars
            elif node.negated_of is not None:
                chars = node.negated_of.case_fold().complement()
            else:
                chars = node.chars.case_fold()
            self.states[s].edges.append((chars, a))
            return s, a
        if isinstance(node, ConcatNode):
            first_start, prev_accept = self.build(node.parts[0])
            for part in node.parts[1:]:
                nxt_start, nxt_accept = self.build(part)
                self.states[prev_accept].epsilons.append(nxt_start)
                prev_accept = nxt_accept
            return first_start, prev_accept
        if isinstance(node, AltNode):
            s = self.fresh()
            a = self.fresh()
            for option in node.options:
                o_start, o_accept = self.build(option)
                self.states[s].epsilons.append(o_start)
                self.states[o_accept].epsilons.append(a)
            return s, a
        if isinstance(node, RepeatNode):
            return self._build_repeat(node)
        if isinstance(node, AnchorNode):
            raise RegexSyntaxError(
                self.pattern, 0,
                "anchors are only supported at the pattern boundaries",
            )
        raise TypeError(f"unknown AST node {node!r}")

    def _build_repeat(self, node: RepeatNode) -> tuple[int, int]:
        lo, hi = node.lo, node.hi
        if lo == 0 and hi is None:  # star
            s = self.fresh()
            a = self.fresh()
            c_start, c_accept = self.build(node.child)
            self.states[s].epsilons.extend((c_start, a))
            self.states[c_accept].epsilons.extend((c_start, a))
            return s, a
        if lo == 1 and hi is None:  # plus
            c_start, c_accept = self.build(node.child)
            tail_start, tail_accept = self._build_repeat(
                RepeatNode(node.child, 0, None)
            )
            self.states[c_accept].epsilons.append(tail_start)
            return c_start, tail_accept
        if lo == 0 and hi == 1:  # question
            s = self.fresh()
            a = self.fresh()
            c_start, c_accept = self.build(node.child)
            self.states[s].epsilons.extend((c_start, a))
            self.states[c_accept].epsilons.append(a)
            return s, a
        # Counted {m,n} / {m,} — unrolled copies.
        start = self.fresh()
        current = start
        for _ in range(lo):
            c_start, c_accept = self.build(node.child)
            self.states[current].epsilons.append(c_start)
            current = c_accept
        if hi is None:
            star_start, star_accept = self._build_repeat(
                RepeatNode(node.child, 0, None)
            )
            self.states[current].epsilons.append(star_start)
            return start, star_accept
        accept = self.fresh()
        self.states[current].epsilons.append(accept)
        for _ in range(hi - lo):
            c_start, c_accept = self.build(node.child)
            self.states[current].epsilons.append(c_start)
            self.states[c_accept].epsilons.append(accept)
            current = c_accept
        return start, accept


def _strip_anchors(node: Node, pattern: str) -> tuple[Node, bool, bool]:
    """Pull boundary anchors off the AST, returning (body, ^, $)."""
    anchored_start = False
    anchored_end = False
    if isinstance(node, AnchorNode):
        if node.kind == "start":
            return EmptyNode(), True, False
        return EmptyNode(), False, True
    if isinstance(node, ConcatNode):
        parts = list(node.parts)
        if parts and isinstance(parts[0], AnchorNode) and parts[0].kind == "start":
            anchored_start = True
            parts = parts[1:]
        if parts and isinstance(parts[-1], AnchorNode) and parts[-1].kind == "end":
            anchored_end = True
            parts = parts[:-1]
        if not parts:
            return EmptyNode(), anchored_start, anchored_end
        body: Node = parts[0] if len(parts) == 1 else ConcatNode(tuple(parts))
        return body, anchored_start, anchored_end
    return node, False, False


def build_nfa(node: Node, pattern: str = "", fold_case: bool = False) -> Nfa:
    """Compile a parsed AST into a Thompson NFA.

    ``fold_case`` implements the PCRE ``(?i)`` flag by closing every
    character set under ASCII case at construction time.
    """
    body, anchored_start, anchored_end = _strip_anchors(node, pattern)
    builder = _Builder(pattern, fold_case=fold_case)
    start, accept = builder.build(body)
    return Nfa(
        states=builder.states,
        start=start,
        accept=accept,
        anchored_start=anchored_start,
        anchored_end=anchored_end,
    )
