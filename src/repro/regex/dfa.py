"""Subset construction: NFA → DFA with a partitioned alphabet.

The DFA transition table produced here is the "FSM table" the paper
refers to throughout Section 4.5 — the object the regular-expression
manager publishes into a hash map keyed by the pattern string, and the
object whose *states* the content-reuse table memoizes ("the state in
the FSM table that the regexp can advance to if the incoming content
finds a match").

To keep tables small, the 256-byte alphabet is first partitioned into
equivalence classes induced by the character sets on the NFA's edges;
transitions are stored per class, exactly as hardware FSM tables do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.regex.charset import ALPHABET_SIZE, CharSet
from repro.regex.nfa import Nfa

#: Sentinel for "no transition" (the dead state).
DEAD = -1

#: Guardrail on subset-construction blowups.
MAX_DFA_STATES = 10_000


def partition_alphabet(edge_sets: list[CharSet]) -> tuple[list[int], int]:
    """Partition 0..255 into equivalence classes w.r.t. ``edge_sets``.

    Returns ``(class_of, class_count)`` where ``class_of[code]`` maps a
    byte value to its class id.  Two bytes share a class iff every edge
    set either contains both or neither, so DFA transitions can be
    stored per class without loss.
    """
    # Signature of a byte = the subset of edge sets containing it.
    signatures: dict[tuple[bool, ...], int] = {}
    class_of = [0] * ALPHABET_SIZE
    for code in range(ALPHABET_SIZE):
        sig = tuple(cs.contains_code(code) for cs in edge_sets)
        cls = signatures.setdefault(sig, len(signatures))
        class_of[code] = cls
    return class_of, len(signatures)


@dataclass
class FsmTable:
    """The DFA in tabular form (what the reuse table's states index).

    Attributes
    ----------
    transitions:
        ``transitions[state][char_class]`` → next state or :data:`DEAD`.
    accepting:
        Set of accepting state ids.
    class_of:
        Byte value → character-class id.
    start:
        Initial state id.
    live:
        ``live[state]`` is False when no accepting state is reachable —
        scanning can stop the moment it enters such a state.
    """

    transitions: list[list[int]]
    accepting: frozenset[int]
    class_of: list[int]
    start: int
    live: list[bool] = field(default_factory=list)

    @property
    def state_count(self) -> int:
        return len(self.transitions)

    @property
    def class_count(self) -> int:
        return len(self.transitions[0]) if self.transitions else 0

    def step(self, state: int, ch: str) -> int:
        """Advance one character; returns :data:`DEAD` on no-match."""
        if state == DEAD:
            return DEAD
        code = ord(ch)
        if code >= ALPHABET_SIZE:
            return DEAD
        return self.transitions[state][self.class_of[code]]

    def is_accepting(self, state: int) -> bool:
        return state in self.accepting

    def is_live(self, state: int) -> bool:
        return state != DEAD and self.live[state]

    def table_bytes(self) -> int:
        """Approximate storage footprint of the table (2 B per cell)."""
        return self.state_count * self.class_count * 2


def build_dfa(nfa: Nfa) -> FsmTable:
    """Determinize ``nfa`` via subset construction."""
    edge_sets: list[CharSet] = []
    seen_masks: set[int] = set()
    for state in nfa.states:
        for chars, _ in state.edges:
            if chars.mask not in seen_masks:
                seen_masks.add(chars.mask)
                edge_sets.append(chars)
    class_of, class_count = partition_alphabet(edge_sets)

    # Representative byte for each class (to evaluate CharSet membership).
    rep_of_class = [0] * class_count
    for code in range(ALPHABET_SIZE):
        rep_of_class[class_of[code]] = code

    start_set = nfa.epsilon_closure(frozenset({nfa.start}))
    subset_ids: dict[frozenset[int], int] = {start_set: 0}
    worklist = [start_set]
    transitions: list[list[int]] = []
    accepting: set[int] = set()

    while worklist:
        subset = worklist.pop()
        sid = subset_ids[subset]
        while len(transitions) <= sid:
            transitions.append([DEAD] * class_count)
        if nfa.accept in subset:
            accepting.add(sid)
        for cls in range(class_count):
            rep = rep_of_class[cls]
            moved: set[int] = set()
            for nstate in subset:
                for chars, target in nfa.states[nstate].edges:
                    if chars.contains_code(rep):
                        moved.add(target)
            if not moved:
                continue
            closure = nfa.epsilon_closure(frozenset(moved))
            nxt = subset_ids.get(closure)
            if nxt is None:
                if len(subset_ids) >= MAX_DFA_STATES:
                    raise ValueError("DFA state explosion")
                nxt = len(subset_ids)
                subset_ids[closure] = nxt
                worklist.append(closure)
            transitions[sid][cls] = nxt

    # Pad rows created late.
    for row in transitions:
        assert len(row) == class_count

    live = _compute_liveness(transitions, accepting)
    return FsmTable(
        transitions=transitions,
        accepting=frozenset(accepting),
        class_of=class_of,
        start=0,
        live=live,
    )


def _compute_liveness(
    transitions: list[list[int]], accepting: set[int]
) -> list[bool]:
    """States from which some accepting state is reachable."""
    n = len(transitions)
    reverse: list[list[int]] = [[] for _ in range(n)]
    for src, row in enumerate(transitions):
        for dst in row:
            if dst != DEAD:
                reverse[dst].append(src)
    live = [False] * n
    stack = sorted(accepting)
    for s in stack:
        live[s] = True
    while stack:
        s = stack.pop()
        for p in reverse[s]:
            if not live[p]:
                live[p] = True
                stack.append(p)
    return live
