"""Regular-expression substrate: parser → NFA → DFA → matching engine.

Stands in for PCRE.  The engine counts every character it examines, so
the content-sifting and content-reuse accelerators in
:mod:`repro.accel.regex_accel` have an honest baseline to reduce.
"""

from repro.regex.charset import (
    CharSet,
    DIGIT,
    REGULAR_CHARS,
    SPACE,
    SPECIAL_CHARS,
    WORD,
)
from repro.regex.dfa import DEAD, FsmTable, build_dfa, partition_alphabet
from repro.regex.engine import (
    CompiledRegex,
    MatchResult,
    RegexManager,
    ScanOutcome,
)
from repro.regex.nfa import Nfa, build_nfa
from repro.regex.parser import RegexSyntaxError, parse

__all__ = [
    "CharSet",
    "DIGIT",
    "WORD",
    "SPACE",
    "REGULAR_CHARS",
    "SPECIAL_CHARS",
    "parse",
    "RegexSyntaxError",
    "Nfa",
    "build_nfa",
    "FsmTable",
    "build_dfa",
    "partition_alphabet",
    "DEAD",
    "CompiledRegex",
    "MatchResult",
    "ScanOutcome",
    "RegexManager",
]
