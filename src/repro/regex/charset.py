"""Character sets as 256-bit masks.

The regexp compiler works over the byte alphabet (0–255).  Unicode in
PHP content arrives as UTF-8 byte sequences, matching how the paper's
string accelerator "groups the single-byte character comparisons"
(Section 4.4).  A :class:`CharSet` is an immutable bitmask with set
algebra, the building block for character classes and DFA alphabet
partitioning.
"""

from __future__ import annotations

from typing import Iterator

ALPHABET_SIZE = 256
_FULL_MASK = (1 << ALPHABET_SIZE) - 1


class CharSet:
    """Immutable set of byte values backed by a 256-bit integer."""

    __slots__ = ("mask",)

    def __init__(self, mask: int = 0) -> None:
        if not 0 <= mask <= _FULL_MASK:
            raise ValueError("mask out of range for a 256-char alphabet")
        self.mask = mask

    # -- constructors ------------------------------------------------------------

    @staticmethod
    def empty() -> "CharSet":
        return CharSet(0)

    @staticmethod
    def full() -> "CharSet":
        return CharSet(_FULL_MASK)

    @staticmethod
    def of(chars: str) -> "CharSet":
        mask = 0
        for ch in chars:
            code = ord(ch)
            if code >= ALPHABET_SIZE:
                raise ValueError(f"character {ch!r} outside byte alphabet")
            mask |= 1 << code
        return CharSet(mask)

    @staticmethod
    def char_range(lo: str, hi: str) -> "CharSet":
        lo_c, hi_c = ord(lo), ord(hi)
        if lo_c > hi_c:
            raise ValueError(f"bad range {lo!r}-{hi!r}")
        mask = ((1 << (hi_c + 1)) - 1) & ~((1 << lo_c) - 1)
        return CharSet(mask)

    @staticmethod
    def dot() -> "CharSet":
        """PCRE default ``.``: any byte except newline."""
        return CharSet.full().difference(CharSet.of("\n"))

    # -- set algebra ---------------------------------------------------------------

    def union(self, other: "CharSet") -> "CharSet":
        return CharSet(self.mask | other.mask)

    def intersection(self, other: "CharSet") -> "CharSet":
        return CharSet(self.mask & other.mask)

    def difference(self, other: "CharSet") -> "CharSet":
        return CharSet(self.mask & ~other.mask)

    def complement(self) -> "CharSet":
        return CharSet(~self.mask & _FULL_MASK)

    def case_fold(self) -> "CharSet":
        """Close the set under ASCII case: 'a' ∈ S ⇒ 'A' ∈ fold(S)."""
        mask = self.mask
        for code in list(self.codes()):
            if ord("a") <= code <= ord("z"):
                mask |= 1 << (code - 32)
            elif ord("A") <= code <= ord("Z"):
                mask |= 1 << (code + 32)
        return CharSet(mask)

    # -- queries --------------------------------------------------------------------

    def contains(self, ch: str) -> bool:
        code = ord(ch)
        return code < ALPHABET_SIZE and bool(self.mask >> code & 1)

    def contains_code(self, code: int) -> bool:
        return 0 <= code < ALPHABET_SIZE and bool(self.mask >> code & 1)

    def is_empty(self) -> bool:
        return self.mask == 0

    def __len__(self) -> int:
        return bin(self.mask).count("1")

    def codes(self) -> Iterator[int]:
        """Iterate member byte values in ascending order."""
        mask = self.mask
        code = 0
        while mask:
            if mask & 1:
                yield code
            mask >>= 1
            code += 1

    def sample_char(self) -> str:
        """Any single member character (for tests/debug output)."""
        for code in self.codes():
            return chr(code)
        raise ValueError("empty CharSet has no sample")

    # -- value semantics ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CharSet) and self.mask == other.mask

    def __hash__(self) -> int:
        # repro: allow(DET005) — mask is an int; int hash is unsalted.
        return hash(self.mask)

    def __repr__(self) -> str:
        if self.mask == _FULL_MASK:
            return "CharSet(full)"
        members = list(self.codes())
        if len(members) <= 8:
            text = "".join(
                chr(c) if 32 <= c < 127 else f"\\x{c:02x}" for c in members
            )
            return f"CharSet({text!r})"
        return f"CharSet(<{len(members)} chars>)"


# -- named classes used by the parser ------------------------------------------------

DIGIT = CharSet.char_range("0", "9")
WORD = (
    CharSet.char_range("a", "z")
    .union(CharSet.char_range("A", "Z"))
    .union(DIGIT)
    .union(CharSet.of("_"))
)
SPACE = CharSet.of(" \t\n\r\x0b\f")

#: Section 4.5's split of the byte alphabet: "we classify the following
#: characters {A-Za-z0-9_.,-} as regular characters and the remaining
#: ASCII characters as special characters."  The space character is
#: included as regular here: prose is mostly words separated by spaces,
#: and treating the separator as special would make *every* text
#: segment unskippable, contradicting the paper's Figure 12 skip rates
#: (the texturize-class regexps never key on a bare space either).
REGULAR_CHARS = WORD.union(CharSet.of(".,- "))
SPECIAL_CHARS = CharSet(((1 << 128) - 1)).difference(REGULAR_CHARS)
