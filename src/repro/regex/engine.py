"""Regexp matching engine with per-character cost accounting.

The engine implements leftmost-longest matching over the FSM tables of
:mod:`repro.regex.dfa`.  Every character the automaton consumes bumps
``regex.chars_examined`` — the quantity the paper's two content
filtering techniques (Section 4.5) exist to reduce, and the y-axis of
its Figure 12 ("percentage of total textual content ... regexps can
skip processing").

The engine intentionally processes text character-at-a-time from each
candidate start position, because that is precisely the software
baseline the paper criticizes: "Traditional regular expression
processing engines are built around a character-at-a-time sequential
processing model."  Early termination on dead states is implemented —
the baseline is honest, not a strawman.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Optional

from repro.common.stats import StatRegistry
from repro.regex.dfa import DEAD, FsmTable, build_dfa
from repro.regex.nfa import build_nfa
from repro.regex.parser import parse


@lru_cache(maxsize=512)
def _compile_tables(pattern: str) -> tuple[bool, bool, bool, FsmTable]:
    """Memoized pattern → (ignore_case, anchors, FSM table).

    Parse/NFA/DFA construction is deterministic and the resulting
    table is never mutated by matching, so compiled tables are shared
    across :class:`CompiledRegex` instances (each instance keeps its
    own stats registry).  Repeated patterns across simulators compile
    once per process.
    """
    body = pattern
    ignore_case = body.startswith("(?i)")
    if ignore_case:
        body = body[4:]
    nfa = build_nfa(parse(body), body, fold_case=ignore_case)
    return ignore_case, nfa.anchored_start, nfa.anchored_end, build_dfa(nfa)

#: µops a software engine spends per character examined (table load,
#: index computation, branch) — the character-at-a-time model.
UOPS_PER_CHAR = 6
#: Fixed per-call overhead (PCRE setup, option decoding).
CALL_OVERHEAD_UOPS = 40


@dataclass
class MatchResult:
    """One match: ``text[start:end]`` matched the pattern."""

    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclass
class ScanOutcome:
    """A search/match call plus the work it performed."""

    match: Optional[MatchResult]
    chars_examined: int


class CompiledRegex:
    """A pattern compiled to an FSM table, with matching entry points."""

    def __init__(self, pattern: str, stats: Optional[StatRegistry] = None) -> None:
        self.pattern = pattern
        (self.ignore_case, self.anchored_start, self.anchored_end,
         self.fsm) = _compile_tables(pattern)
        self.stats = stats if stats is not None else StatRegistry("regex")

    # -- low-level FSM access (used by the content-reuse accelerator) -----------

    def state_after(
        self, text: str, start: int = 0, length: Optional[int] = None
    ) -> tuple[int, Optional[int]]:
        """Run the anchored automaton over a prefix.

        Returns ``(state, last_accept_end)`` after consuming
        ``text[start:start+length]`` from the initial state.  This pair
        is exactly what a content-reuse entry has to remember to resume
        matching after a memoized prefix (Section 4.5, Figure 13).
        """
        fsm = self.fsm
        transitions = fsm.transitions
        class_of = fsm.class_of
        accepting = fsm.accepting
        state = fsm.start
        last_accept = start if state in accepting else None
        stop = len(text) if length is None else min(len(text), start + length)
        examined = 0
        for pos in range(start, stop):
            code = ord(text[pos])
            state = transitions[state][class_of[code]] if code < 256 else DEAD
            examined += 1
            if state == DEAD:
                self._count(examined)
                return DEAD, last_accept
            if state in accepting:
                last_accept = pos + 1
        self._count(examined)
        return state, last_accept

    def resume(
        self,
        state: int,
        last_accept: Optional[int],
        text: str,
        pos: int,
    ) -> tuple[Optional[int], int]:
        """Continue an anchored match from a memoized FSM state.

        Returns ``(match_end, chars_examined)`` where ``match_end`` is
        the longest accept position (or None).  Used by the reuse
        accelerator to finish a match after jumping over a shared
        content prefix.
        """
        fsm = self.fsm
        transitions = fsm.transitions
        class_of = fsm.class_of
        accepting = fsm.accepting
        live = fsm.live
        n = len(text)
        examined = 0
        best = last_accept
        current = state
        while pos < n and current != DEAD and live[current]:
            code = ord(text[pos])
            current = transitions[current][class_of[code]] if code < 256 else DEAD
            examined += 1
            pos += 1
            if current == DEAD:
                break
            if current in accepting:
                best = pos
        self._count(examined)
        if self.anchored_end and best is not None and best != n:
            best = None if current not in accepting or pos != n else best
        return best, examined

    # -- matching entry points ------------------------------------------------------

    def match_prefix(self, text: str, start: int = 0) -> ScanOutcome:
        """Longest match beginning exactly at ``start`` (PCRE-anchored)."""
        self.stats.bump("regex.calls")
        state, last_accept = self.state_after(text, start)
        examined = 0  # state_after already counted
        best = last_accept
        if self.anchored_end:
            ok = state != DEAD and self.fsm.is_accepting(state)
            best = len(text) if ok else None
        if best is None:
            return ScanOutcome(None, examined)
        return ScanOutcome(MatchResult(start, best), examined)

    def search(
        self, text: str, start: int = 0, start_limit: Optional[int] = None
    ) -> ScanOutcome:
        """Leftmost-longest match starting in ``[start, start_limit)``.

        Scans candidate start positions left to right, running the
        anchored automaton at each; dead-state liveness pruning stops a
        candidate as soon as no accept remains reachable.
        ``start_limit`` bounds where a match may *begin* (matches may
        extend past it) — the hook content sifting uses to confine
        candidate starts to hint-vector-marked segments.
        """
        self.stats.bump("regex.calls")
        fsm = self.fsm
        transitions = fsm.transitions
        class_of = fsm.class_of
        accepting = fsm.accepting
        live = fsm.live
        fsm_start = fsm.start
        start_accepting = fsm_start in accepting
        anchored_end = self.anchored_end
        n = len(text)
        total_examined = 0
        limit = n + 1 if start_limit is None else min(start_limit, n + 1)
        positions = [start] if self.anchored_start else range(start, limit)
        for s in positions:
            state = fsm_start
            best: Optional[int] = s if start_accepting else None
            pos = s
            while pos < n and live[state]:
                code = ord(text[pos])
                state = transitions[state][class_of[code]] if code < 256 else DEAD
                total_examined += 1
                pos += 1
                if state == DEAD:
                    break
                if state in accepting:
                    best = pos
            if anchored_end and best is not None and best != n:
                best = None
            if best is not None:
                self._count(total_examined)
                return ScanOutcome(MatchResult(s, best), total_examined)
        self._count(total_examined)
        return ScanOutcome(None, total_examined)

    def findall(self, text: str) -> tuple[list[MatchResult], int]:
        """All non-overlapping matches, left to right."""
        matches: list[MatchResult] = []
        examined = 0
        pos = 0
        while pos <= len(text):
            outcome = self.search(text, pos)
            examined += outcome.chars_examined
            if outcome.match is None:
                break
            matches.append(outcome.match)
            # Empty matches advance one char to guarantee progress.
            pos = outcome.match.end if outcome.match.length > 0 else pos + 1
            if self.anchored_start:
                break
        return matches, examined

    def sub(
        self,
        replacement: str | Callable[[str], str],
        text: str,
    ) -> tuple[str, int, int]:
        """PHP ``preg_replace``: returns (result, n_replaced, chars)."""
        matches, examined = self.findall(text)
        if not matches:
            return text, 0, examined
        out: list[str] = []
        cursor = 0
        for m in matches:
            out.append(text[cursor:m.start])
            piece = text[m.start:m.end]
            out.append(replacement(piece) if callable(replacement) else replacement)
            cursor = m.end
        out.append(text[cursor:])
        return "".join(out), len(matches), examined

    # -- accounting -------------------------------------------------------------------

    def _count(self, chars: int) -> None:
        if chars:
            self.stats.bump("regex.chars_examined", chars)
            self.stats.bump("regex.uops", chars * UOPS_PER_CHAR)

    def __repr__(self) -> str:
        return (
            f"CompiledRegex({self.pattern!r}, states={self.fsm.state_count}, "
            f"classes={self.fsm.class_count})"
        )


class RegexManager:
    """Compile cache — the paper's "regular expression manager".

    Section 4.2: "the regular expression manager shares a search
    pattern (key) and its FSM table (value) with other appropriate
    functions through a hash map."  When given a symbol table, this
    manager publishes compiled FSM tables through it, which is one of
    the dynamic-key hash-map access patterns the hardware hash table
    accelerates.
    """

    def __init__(
        self,
        stats: Optional[StatRegistry] = None,
        pattern_table=None,
    ) -> None:
        self.stats = stats if stats is not None else StatRegistry("regexmgr")
        self._cache: dict[str, CompiledRegex] = {}
        self._pattern_table = pattern_table  # optional SymbolTable

    def compile(self, pattern: str) -> CompiledRegex:
        """Fetch-or-compile; publishes the FSM table when configured."""
        found = self._cache.get(pattern)
        if found is not None:
            self.stats.bump("regexmgr.cache_hits")
            if self._pattern_table is not None:
                # Consumers re-fetch the FSM table via the hash map.
                self._pattern_table.lookup(pattern)
            return found
        self.stats.bump("regexmgr.compiles")
        compiled = CompiledRegex(pattern, stats=self.stats)
        self._cache[pattern] = compiled
        if self._pattern_table is not None:
            self._pattern_table.define(pattern, compiled.fsm)
        return compiled

    @property
    def chars_examined(self) -> int:
        return self.stats.get("regex.chars_examined")
