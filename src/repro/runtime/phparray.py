"""Ordered hash map with PHP array semantics (the software hash map).

PHP arrays are ordered dictionaries: iteration (``foreach``) visits
key/value pairs in insertion order, while lookups go through a hash
table.  HHVM's ``MixedArray`` implements this with a bucket array of
indices into an insertion-ordered entry vector; this module mirrors
that layout because the paper's hardware hash table must stay coherent
with exactly this structure (Section 4.2, "the software hash map
stores each key/value pair in a table ordered based on insertion, and
also stores a pointer to that table in a hash table for fast lookup").

Cost accounting
---------------
Every operation records the probes and key comparisons it performed.
The paper measures that a software hash-map walk averages **90.66 x86
µops** (Section 5.2); :mod:`repro.core.costs` converts the probe/byte
counters kept here into µops calibrated against that number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.common.stats import StatRegistry

#: Tombstone marker in the bucket array.
_TOMBSTONE = -2
#: Empty marker in the bucket array.
_EMPTY = -1


def php_array_hash(key: str) -> int:
    """Deterministic string hash (DJB2 variant, as in Zend/HHVM).

    The hardware hash table uses a *simplified* hash (Section 4.2,
    Design considerations); this is the full-cost software one.
    """
    h = 5381
    for ch in key:
        h = ((h << 5) + h + ord(ch)) & 0xFFFFFFFFFFFFFFFF
    return h


@dataclass
class _Entry:
    key: str
    value: Any
    hash: int


class PhpArray:
    """Insertion-ordered hash map, HHVM ``MixedArray`` style.

    Parameters
    ----------
    base_address:
        The simulated memory address of the array structure.  The
        hardware hash table hashes ``(base_address, key)`` pairs, and
        the reverse translation table is indexed by this address.
    stats:
        Optional shared registry; per-instance registries are created
        otherwise.
    """

    INITIAL_CAPACITY = 8
    MAX_LOAD = 0.75

    def __init__(
        self,
        base_address: int = 0,
        stats: Optional[StatRegistry] = None,
        capacity: int = INITIAL_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.base_address = base_address
        self.stats = stats if stats is not None else StatRegistry("phparray")
        self._mask = self._round_up_pow2(capacity) - 1
        self._buckets: list[int] = [_EMPTY] * (self._mask + 1)
        self._entries: list[Optional[_Entry]] = []
        self._used = 0  # live entries (excludes holes)
        #: set by the hardware hash table when it flushes stale state
        self.stale_hash_flag = False

    @staticmethod
    def _round_up_pow2(n: int) -> int:
        p = 1
        while p < n:
            p <<= 1
        return p

    # -- core operations -------------------------------------------------------

    def get(self, key: str) -> Any:
        """Look up ``key``; raises ``KeyError`` when absent.

        Records ``walk.probes`` and ``walk.key_bytes`` for the cost
        model, and one ``walk.ops`` event.
        """
        self._maybe_rebuild()
        idx = self._find(key)
        self.stats.bump("walk.ops")
        if idx is None:
            self.stats.bump("walk.misses")
            raise KeyError(key)
        entry = self._entries[idx]
        assert entry is not None
        return entry.value

    def get_default(self, key: str, default: Any = None) -> Any:
        """Lookup returning ``default`` instead of raising."""
        try:
            return self.get(key)
        except KeyError:
            return default

    def set(self, key: str, value: Any) -> None:
        """Insert or update ``key``; updates keep insertion order."""
        self._maybe_rebuild()
        self.stats.bump("walk.ops")
        idx = self._find(key)
        if idx is not None:
            entry = self._entries[idx]
            assert entry is not None
            entry.value = value
            return
        self._insert_new(key, value)

    def unset(self, key: str) -> bool:
        """Delete ``key``; returns whether it existed."""
        self._maybe_rebuild()
        self.stats.bump("walk.ops")
        h = php_array_hash(key)
        slot = h & self._mask
        while True:
            self.stats.bump("walk.probes")
            ref = self._buckets[slot]
            if ref == _EMPTY:
                return False
            if ref != _TOMBSTONE:
                entry = self._entries[ref]
                if entry is not None and entry.hash == h and entry.key == key:
                    self.stats.bump("walk.key_bytes", len(key))
                    self._buckets[slot] = _TOMBSTONE
                    self._entries[ref] = None
                    self._used -= 1
                    return True
            slot = (slot + 1) & self._mask

    def __contains__(self, key: str) -> bool:
        self._maybe_rebuild()
        return self._find(key) is not None

    def __len__(self) -> int:
        return self._used

    def items(self) -> Iterator[tuple[str, Any]]:
        """``foreach`` iteration: key/value pairs in insertion order."""
        self._maybe_rebuild()
        for entry in self._entries:
            if entry is not None:
                self.stats.bump("foreach.visits")
                yield entry.key, entry.value

    def keys(self) -> list[str]:
        return [k for k, _ in self.items()]

    def hardware_writeback(self, key: str, value: Any) -> None:
        """Apply a dirty value evicted from the hardware hash table.

        The accelerator writes the insertion-ordered entry table
        directly (it holds the value pointer) — no bucket walk happens
        and no walk cost is recorded.  When the key is new to memory,
        the entry is appended and the bucket array becomes stale; the
        next software access rebuilds it (Section 4.2's stale-flag
        protocol).
        """
        self.stats.bump("walk.hw_writebacks")
        h = php_array_hash(key)
        for entry in self._entries:
            if entry is not None and entry.hash == h and entry.key == key:
                entry.value = value
                return
        self._entries.append(_Entry(key, value, h))
        self._used += 1
        self.stale_hash_flag = True

    # -- internals ---------------------------------------------------------------

    def _find(self, key: str) -> Optional[int]:
        """Linear-probe lookup recording probe/compare costs."""
        h = php_array_hash(key)
        slot = h & self._mask
        while True:
            self.stats.bump("walk.probes")
            ref = self._buckets[slot]
            if ref == _EMPTY:
                return None
            if ref != _TOMBSTONE:
                entry = self._entries[ref]
                if entry is not None and entry.hash == h:
                    self.stats.bump("walk.key_bytes", len(key))
                    if entry.key == key:
                        return ref
            slot = (slot + 1) & self._mask

    def _insert_new(self, key: str, value: Any) -> None:
        if (self._used + 1) > self.MAX_LOAD * (self._mask + 1):
            self._grow()
        h = php_array_hash(key)
        slot = h & self._mask
        while self._buckets[slot] not in (_EMPTY, _TOMBSTONE):
            self.stats.bump("walk.probes")
            slot = (slot + 1) & self._mask
        self._entries.append(_Entry(key, value, h))
        self._buckets[slot] = len(self._entries) - 1
        self._used += 1

    def _grow(self) -> None:
        self.stats.bump("walk.rehashes")
        old_entries = [e for e in self._entries if e is not None]
        self._mask = (self._mask + 1) * 2 - 1
        self._buckets = [_EMPTY] * (self._mask + 1)
        self._entries = []
        self._used = 0
        for entry in old_entries:
            self._insert_entry_raw(entry)

    def _insert_entry_raw(self, entry: _Entry) -> None:
        slot = entry.hash & self._mask
        while self._buckets[slot] != _EMPTY:
            slot = (slot + 1) & self._mask
        self._entries.append(_Entry(entry.key, entry.value, entry.hash))
        self._buckets[slot] = len(self._entries) - 1
        self._used += 1

    def _maybe_rebuild(self) -> None:
        """Reconstruct the bucket array if the hardware marked it stale.

        Section 4.2: the hardware hash table writes back only the
        ordered entry table and "marks a flag in the software hash map
        to indicate that the hash table ... is now stale. Subsequent
        software accesses ... reconstruct the hash table if the flag is
        set."  Rare in practice (process migration); modeled for
        correctness and counted.
        """
        if not self.stale_hash_flag:
            return
        self.stale_hash_flag = False
        self.stats.bump("walk.stale_rebuilds")
        live = [e for e in self._entries if e is not None]
        while len(live) > self.MAX_LOAD * (self._mask + 1):
            self._mask = (self._mask + 1) * 2 - 1
        self._buckets = [_EMPTY] * (self._mask + 1)
        self._entries = []
        self._used = 0
        for entry in live:
            self._insert_entry_raw(entry)

    def __repr__(self) -> str:
        return (
            f"PhpArray(base=0x{self.base_address:x}, len={self._used}, "
            f"cap={self._mask + 1})"
        )
