"""MiniPHP: a small PHP-flavored template interpreter.

The paper's workloads are template-rendering applications; this module
provides an executable stand-in so the accelerators can be exercised
by *programs* rather than synthetic op streams.  It covers the subset
the three applications' hot paths live in:

* templates with ``<?php ... ?>`` code islands and ``<?= expr ?>``
  echo tags,
* variables (``$x``), string/int/bool literals, ``.`` concatenation,
  comparisons, ``array('k' => v, ...)`` literals and ``$a['k']``
  indexing,
* ``foreach ($arr as $k => $v): ... endforeach;`` (PHP insertion-order
  iteration), ``if/else/endif``, assignment, ``echo``,
* the library functions the workloads use: ``strtoupper``,
  ``strtolower``, ``trim``, ``strlen``, ``strpos``, ``str_replace``,
  ``substr``, ``htmlspecialchars``, ``implode``, ``extract``,
  ``preg_match``, ``preg_replace``.

Execution is backend-pluggable: the *software* backend runs string and
regexp work through :class:`~repro.runtime.strings.StringLibrary` and
the plain engine; the *accelerated* backend routes the same calls
through the :class:`~repro.isa.dispatch.AcceleratorComplex` (string
matching matrix, content-reuse-ready regexps, hardware hash table for
variable scopes).  Both must render byte-identical pages — integration
tests assert it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.common.stats import StatRegistry
from repro.regex.engine import RegexManager

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.isa.dispatch import AcceleratorComplex
from repro.runtime.phparray import PhpArray
from repro.runtime.strings import HTML_ESCAPES, StringLibrary


class MiniPhpError(ValueError):
    """Parse or runtime error in a MiniPHP template."""


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<var>\$[A-Za-z_][A-Za-z0-9_]*)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>=>|==|!=|<=|>=|[=<>.,;:()\[\]])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"foreach", "endforeach", "as", "if", "else", "endif",
             "echo", "true", "false", "null"}


@dataclass(frozen=True)
class Token:
    kind: str   # 'number' | 'string' | 'var' | 'name' | 'op' | 'kw'
    text: str


def tokenize_code(code: str) -> list[Token]:
    """Tokenize one ``<?php ... ?>`` island."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(code):
        m = _TOKEN_RE.match(code, pos)
        if m is None:
            raise MiniPhpError(f"bad character {code[pos]!r} at {pos}")
        pos = m.end()
        kind = m.lastgroup
        if kind == "ws":
            continue
        text = m.group()
        if kind == "name" and text in _KEYWORDS:
            kind = "kw"
        tokens.append(Token(kind, text))
    return tokens


# ---------------------------------------------------------------------------
# Template segmentation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Segment:
    kind: str   # 'literal' | 'echo' | 'code'
    body: str


def split_template(source: str) -> list[Segment]:
    """Split a template into literal, echo, and code segments."""
    segments: list[Segment] = []
    pos = 0
    while pos < len(source):
        open_tag = source.find("<?", pos)
        if open_tag < 0:
            segments.append(Segment("literal", source[pos:]))
            break
        if open_tag > pos:
            segments.append(Segment("literal", source[pos:open_tag]))
        close_tag = source.find("?>", open_tag)
        if close_tag < 0:
            raise MiniPhpError("unterminated <?php tag")
        inner = source[open_tag + 2:close_tag]
        if inner.startswith("="):
            segments.append(Segment("echo", inner[1:].strip()))
        else:
            if inner.startswith("php"):
                inner = inner[3:]
            segments.append(Segment("code", inner.strip()))
        pos = close_tag + 2
    return [s for s in segments if s.body or s.kind == "literal"]


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class SoftwareBackend:
    """Runs library calls on the software substrate."""

    name = "software"

    def __init__(self) -> None:
        self.strings = StringLibrary()
        self.regex = RegexManager()
        self.stats = StatRegistry("interp-sw")

    # string ops return plain values; costs accrue in the components
    def strtoupper(self, s: str) -> str:
        return self.strings.strtoupper(s).value

    def strtolower(self, s: str) -> str:
        return self.strings.strtolower(s).value

    def trim(self, s: str) -> str:
        return self.strings.trim(s).value

    def strlen(self, s: str) -> int:
        return self.strings.strlen(s).value

    def strpos(self, haystack: str, needle: str) -> int:
        return self.strings.strpos(haystack, needle).value

    def str_replace(self, search: str, replace: str, subject: str) -> str:
        return self.strings.str_replace(search, replace, subject).value

    def substr(self, s: str, start: int, length: Optional[int] = None) -> str:
        return self.strings.substr(s, start, length).value

    def htmlspecialchars(self, s: str) -> str:
        return self.strings.htmlspecialchars(s).value

    def concat(self, parts: list[str]) -> str:
        return self.strings.concat(parts).value

    def preg_match(self, pattern: str, subject: str) -> int:
        compiled = self.regex.compile(pattern)
        return 1 if compiled.search(subject).match else 0

    def preg_replace(self, pattern: str, replacement: str, subject: str) -> str:
        compiled = self.regex.compile(pattern)
        out, _, _ = compiled.sub(replacement, subject)
        return out

    def cost_cycles(self) -> float:
        """Approximate cycles spent in backend library work."""
        return (
            self.strings.total_uops / 2.9
            + self.regex.stats.get("regex.uops") / 2.9
        )


class AcceleratedBackend(SoftwareBackend):
    """Routes the same calls through the accelerator complex."""

    name = "accelerated"

    def __init__(self, complex_: Optional["AcceleratorComplex"] = None) -> None:
        super().__init__()
        if complex_ is None:
            from repro.isa.dispatch import AcceleratorComplex
            complex_ = AcceleratorComplex()
        self.complex = complex_
        self._cycles = 0.0

    def _charge(self, outcome) -> Any:
        self._cycles += outcome.cycles
        return outcome.value

    def strtoupper(self, s: str) -> str:
        return self._charge(self.complex.string.to_upper(s))

    def strtolower(self, s: str) -> str:
        return self._charge(self.complex.string.to_lower(s))

    def trim(self, s: str) -> str:
        return self._charge(self.complex.string.trim(s))

    def strpos(self, haystack: str, needle: str) -> int:
        return self._charge(self.complex.string.find(haystack, needle))

    def str_replace(self, search: str, replace: str, subject: str) -> str:
        return self._charge(
            self.complex.string.replace(subject, search, replace)
        )

    def substr(self, s: str, start: int, length: Optional[int] = None) -> str:
        piece = s[start:] if length is None else s[start:start + length]
        return self._charge(self.complex.string.copy(piece))

    def htmlspecialchars(self, s: str) -> str:
        return self._charge(
            self.complex.string.html_escape(s, HTML_ESCAPES)
        )

    def concat(self, parts: list[str]) -> str:
        return self._charge(self.complex.string.copy("".join(parts)))

    def preg_replace(self, pattern: str, replacement: str, subject: str) -> str:
        compiled = self.regex.compile(pattern)
        hv, cycles = self.complex.sifter.build_hint_vector(subject)
        self._cycles += cycles
        result = self.complex.sifter.shadow_findall(compiled, subject, hv)
        if not result.matches:
            return subject
        out: list[str] = []
        cursor = 0
        for m in result.matches:
            out.append(subject[cursor:m.start])
            out.append(replacement)
            cursor = m.end
        out.append(subject[cursor:])
        return "".join(out)

    def cost_cycles(self) -> float:
        return super().cost_cycles() + self._cycles


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------


class _ExprParser:
    """Recursive-descent evaluator over a token list.

    Grammar::

        expr    := compare
        compare := concat (('=='|'!='|'<'|'>'|'<='|'>=') concat)?
        concat  := unit ('.' unit)*
        unit    := literal | var index* | call | '(' expr ')' | array
        index   := '[' expr ']'
    """

    def __init__(self, tokens: list[Token], interp: "MiniPhpInterpreter") -> None:
        self.tokens = tokens
        self.pos = 0
        self.interp = interp

    def _peek(self) -> Optional[Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _take(self) -> Token:
        tok = self._peek()
        if tok is None:
            raise MiniPhpError("unexpected end of expression")
        self.pos += 1
        return tok

    def _expect(self, text: str) -> None:
        tok = self._take()
        if tok.text != text:
            raise MiniPhpError(f"expected {text!r}, got {tok.text!r}")

    def parse(self) -> Any:
        value = self._compare()
        if self._peek() is not None:
            raise MiniPhpError(f"trailing tokens at {self._peek().text!r}")
        return value

    def _compare(self) -> Any:
        left = self._concat()
        tok = self._peek()
        if tok and tok.text in ("==", "!=", "<", ">", "<=", ">="):
            op = self._take().text
            right = self._concat()
            return {
                "==": left == right, "!=": left != right,
                "<": left < right, ">": left > right,
                "<=": left <= right, ">=": left >= right,
            }[op]
        return left

    def _concat(self) -> Any:
        first = self._unit()
        parts = None
        while self._peek() and self._peek().text == ".":
            self._take()
            if parts is None:
                parts = [self.interp.to_string(first)]
            parts.append(self.interp.to_string(self._unit()))
        if parts is None:
            return first
        return self.interp.backend.concat(parts)

    def _unit(self) -> Any:
        tok = self._take()
        if tok.kind == "number":
            return int(tok.text)
        if tok.kind == "string":
            return self._unquote(tok.text)
        if tok.kind == "kw" and tok.text in ("true", "false", "null"):
            return {"true": True, "false": False, "null": None}[tok.text]
        if tok.kind == "var":
            value = self.interp.get_variable(tok.text[1:])
            return self._maybe_index(value)
        if tok.kind == "name" and tok.text == "array":
            return self._array_literal()
        if tok.kind == "name":
            return self._call(tok.text)
        if tok.text == "(":
            value = self._compare()
            self._expect(")")
            return value
        raise MiniPhpError(f"unexpected token {tok.text!r}")

    def _maybe_index(self, value: Any) -> Any:
        while self._peek() and self._peek().text == "[":
            self._take()
            key = self._compare()
            self._expect("]")
            if not isinstance(value, PhpArray):
                raise MiniPhpError("indexing a non-array value")
            value = self.interp.array_get(value, self.interp.to_string(key))
        return value

    def _array_literal(self) -> PhpArray:
        self._expect("(")
        array = self.interp.new_array()
        index = 0
        while self._peek() and self._peek().text != ")":
            first = self._compare()
            if self._peek() and self._peek().text == "=>":
                self._take()
                value = self._compare()
                self.interp.array_set(
                    array, self.interp.to_string(first), value
                )
            else:
                self.interp.array_set(array, str(index), first)
                index += 1
            if self._peek() and self._peek().text == ",":
                self._take()
        self._expect(")")
        return array

    def _call(self, name: str) -> Any:
        self._expect("(")
        args: list[Any] = []
        while self._peek() and self._peek().text != ")":
            args.append(self._compare())
            if self._peek() and self._peek().text == ",":
                self._take()
        self._expect(")")
        return self.interp.call_function(name, args)

    @staticmethod
    def _unquote(text: str) -> str:
        body = text[1:-1]
        return (
            body.replace("\\n", "\n").replace("\\t", "\t")
            .replace("\\'", "'").replace('\\"', '"')
            .replace("\\\\", "\\")
        )


# ---------------------------------------------------------------------------
# Interpreter
# ---------------------------------------------------------------------------


class MiniPhpInterpreter:
    """Renders MiniPHP templates over a pluggable backend."""

    def __init__(self, backend: Optional[SoftwareBackend] = None) -> None:
        self.backend = backend or SoftwareBackend()
        self.stats = StatRegistry("interp")
        self._globals: dict[str, Any] = {}
        self._next_base = 0x6C00_0000
        self._output: list[str] = []

    # -- variables & arrays ----------------------------------------------------

    def set_variable(self, name: str, value: Any) -> None:
        self.stats.bump("interp.var_sets")
        self._globals[name] = value

    def get_variable(self, name: str) -> Any:
        self.stats.bump("interp.var_gets")
        try:
            return self._globals[name]
        except KeyError:
            raise MiniPhpError(f"undefined variable ${name}")

    def new_array(self) -> PhpArray:
        self._next_base += 0x200
        array = PhpArray(base_address=self._next_base)
        complex_ = getattr(self.backend, "complex", None)
        if complex_ is not None:
            # The allocator may hand back an address range a freed map
            # used earlier (strong reuse!); any hardware state keyed on
            # that base address belongs to the dead map and must go —
            # this is the Free/invalidate the RTT makes cheap (§4.2).
            complex_.hash_table.free_map(array.base_address)
            complex_.register_map(array)
        return array

    def array_set(self, array: PhpArray, key: str, value: Any) -> None:
        complex_ = getattr(self.backend, "complex", None)
        if complex_ is not None:
            outcome = complex_.hash_table.set(key, array.base_address, value)
            if not outcome.software_fallback:
                return
        array.set(key, value)

    def array_get(self, array: PhpArray, key: str) -> Any:
        complex_ = getattr(self.backend, "complex", None)
        if complex_ is not None:
            outcome = complex_.hash_table.get(key, array.base_address)
            if outcome.hit:
                return outcome.value_ptr
            value = array.get(key)
            complex_.hash_table.insert_clean(key, array.base_address, value)
            return value
        return array.get(key)

    def array_items(self, array: PhpArray) -> list[tuple[str, Any]]:
        complex_ = getattr(self.backend, "complex", None)
        if complex_ is not None:
            order, _ = complex_.hash_table.foreach_sync(array.base_address)
            if order:
                return [
                    (k, array.get_default(k)) for k in order
                    if array.get_default(k) is not None
                ]
        return list(array.items())

    # -- functions -----------------------------------------------------------------

    def call_function(self, name: str, args: list[Any]) -> Any:
        self.stats.bump("interp.calls")
        b = self.backend
        table: dict[str, Callable[..., Any]] = {
            "strtoupper": lambda s: b.strtoupper(self.to_string(s)),
            "strtolower": lambda s: b.strtolower(self.to_string(s)),
            "trim": lambda s: b.trim(self.to_string(s)),
            "strlen": lambda s: b.strlen(self.to_string(s)),
            "strpos": lambda h, n: b.strpos(self.to_string(h),
                                            self.to_string(n)),
            "str_replace": lambda s, r, subj: b.str_replace(
                self.to_string(s), self.to_string(r), self.to_string(subj)),
            "substr": lambda s, start, *rest: b.substr(
                self.to_string(s), int(start), *(int(r) for r in rest)),
            "htmlspecialchars": lambda s: b.htmlspecialchars(
                self.to_string(s)),
            "preg_match": lambda p, s: b.preg_match(self.to_string(p),
                                                    self.to_string(s)),
            "preg_replace": lambda p, r, s: b.preg_replace(
                self.to_string(p), self.to_string(r), self.to_string(s)),
            "implode": self._implode,
            "extract": self._extract,
            "count": self._count,
        }
        fn = table.get(name)
        if fn is None:
            raise MiniPhpError(f"unknown function {name}()")
        return fn(*args)

    def _implode(self, glue: Any, array: Any) -> str:
        if not isinstance(array, PhpArray):
            raise MiniPhpError("implode() needs an array")
        glue_s = self.to_string(glue)
        parts: list[str] = []
        for i, (_, value) in enumerate(self.array_items(array)):
            if i:
                parts.append(glue_s)
            parts.append(self.to_string(value))
        return self.backend.concat(parts)

    def _extract(self, array: Any) -> int:
        if not isinstance(array, PhpArray):
            raise MiniPhpError("extract() needs an array")
        count = 0
        for key, value in self.array_items(array):
            self.set_variable(key, value)
            count += 1
        return count

    def _count(self, array: Any) -> int:
        if not isinstance(array, PhpArray):
            raise MiniPhpError("count() needs an array")
        return len(array)

    # -- statements ---------------------------------------------------------------------

    def to_string(self, value: Any) -> str:
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "1" if value else ""
        if value is None:
            return ""
        if isinstance(value, int):
            return str(value)
        if isinstance(value, PhpArray):
            return "Array"
        return str(value)

    def _eval(self, tokens: list[Token]) -> Any:
        return _ExprParser(tokens, self).parse()

    def render(self, source: str, variables: dict[str, Any] | None = None) -> str:
        """Render a template to its output string."""
        self._output = []
        for name, value in (variables or {}).items():
            self.set_variable(name, value)
        segments = split_template(source)
        self._run_block(segments, 0, len(segments))
        return "".join(self._output)

    def _run_block(self, segments: list[Segment], start: int, end: int) -> None:
        i = start
        while i < end:
            seg = segments[i]
            if seg.kind == "literal":
                self._output.append(seg.body)
                i += 1
            elif seg.kind == "echo":
                value = self._eval(tokenize_code(seg.body))
                self._output.append(self.to_string(value))
                i += 1
            else:
                i = self._run_code(segments, i, end)

    def _run_code(self, segments: list[Segment], i: int, end: int) -> int:
        tokens = tokenize_code(segments[i].body)
        if not tokens:
            return i + 1
        head = tokens[0]
        if head.kind == "kw" and head.text == "foreach":
            return self._run_foreach(segments, i, end, tokens)
        if head.kind == "kw" and head.text == "if":
            return self._run_if(segments, i, end, tokens)
        # Simple statements, ';'-separated inside one island.
        for statement in self._split_statements(tokens):
            self._run_statement(statement)
        return i + 1

    @staticmethod
    def _split_statements(tokens: list[Token]) -> list[list[Token]]:
        out: list[list[Token]] = []
        current: list[Token] = []
        for tok in tokens:
            if tok.text == ";":
                if current:
                    out.append(current)
                current = []
            else:
                current.append(tok)
        if current:
            out.append(current)
        return out

    def _run_statement(self, tokens: list[Token]) -> None:
        if tokens[0].kind == "kw" and tokens[0].text == "echo":
            value = self._eval(tokens[1:])
            self._output.append(self.to_string(value))
            return
        if (
            len(tokens) >= 2 and tokens[0].kind == "var"
            and tokens[1].text == "="
            and (len(tokens) < 3 or tokens[2].text != "=")
        ):
            value = self._eval(tokens[2:])
            self.set_variable(tokens[0].text[1:], value)
            return
        if (
            tokens[0].kind == "var" and len(tokens) > 2
            and tokens[1].text == "["
        ):
            # $arr['k'] = expr;
            close = self._matching_bracket(tokens, 1)
            if close + 1 < len(tokens) and tokens[close + 1].text == "=":
                array = self.get_variable(tokens[0].text[1:])
                key = self.to_string(self._eval(tokens[2:close]))
                value = self._eval(tokens[close + 2:])
                if not isinstance(array, PhpArray):
                    raise MiniPhpError("indexed assignment on a non-array")
                self.array_set(array, key, value)
                return
        # Expression statement (function call for effect).
        self._eval(tokens)

    @staticmethod
    def _matching_bracket(tokens: list[Token], open_index: int) -> int:
        depth = 0
        for j in range(open_index, len(tokens)):
            if tokens[j].text == "[":
                depth += 1
            elif tokens[j].text == "]":
                depth -= 1
                if depth == 0:
                    return j
        raise MiniPhpError("unbalanced [ ]")

    # -- control flow ----------------------------------------------------------------------

    def _find_matching(
        self, segments: list[Segment], start: int, end: int,
        opener: str, closers: tuple[str, ...],
    ) -> int:
        """Index of the matching closer code segment for block syntax."""
        depth = 0
        for j in range(start + 1, end):
            seg = segments[j]
            if seg.kind != "code":
                continue
            tokens = tokenize_code(seg.body)
            if not tokens or tokens[0].kind != "kw":
                continue
            word = tokens[0].text
            if word == opener:
                depth += 1
            elif word in closers:
                if depth == 0:
                    return j
                if word == closers[-1]:  # the true closer unwinds depth
                    depth -= 1
        raise MiniPhpError(f"missing {closers[-1]} for {opener}")

    def _run_foreach(
        self, segments: list[Segment], i: int, end: int, tokens: list[Token]
    ) -> int:
        # foreach ( $arr as $v ):   |   foreach ( $arr as $k => $v ):
        body = [t for t in tokens[1:] if t.text not in ("(", ")", ":")]
        if len(body) == 3 and body[1].text == "as":
            array_tok, _, value_tok = body
            key_name = None
        elif len(body) == 5 and body[1].text == "as" and body[3].text == "=>":
            array_tok, _, key_tok, _, value_tok = body
            key_name = key_tok.text[1:]
        else:
            raise MiniPhpError("malformed foreach header")
        close = self._find_matching(
            segments, i, end, "foreach", ("endforeach",)
        )
        array = self.get_variable(array_tok.text[1:])
        if not isinstance(array, PhpArray):
            raise MiniPhpError("foreach over a non-array")
        for key, value in self.array_items(array):
            if key_name is not None:
                self.set_variable(key_name, key)
            self.set_variable(value_tok.text[1:], value)
            self._run_block(segments, i + 1, close)
        return close + 1

    def _run_if(
        self, segments: list[Segment], i: int, end: int, tokens: list[Token]
    ) -> int:
        condition_tokens = [t for t in tokens[1:] if t.text != ":"]
        if condition_tokens and condition_tokens[0].text == "(":
            # strip the outer parens (keep inner structure intact)
            condition_tokens = condition_tokens[1:]
            depth = 1
            for idx, t in enumerate(condition_tokens):
                if t.text == "(":
                    depth += 1
                elif t.text == ")":
                    depth -= 1
                    if depth == 0:
                        condition_tokens = (
                            condition_tokens[:idx]
                            + condition_tokens[idx + 1:]
                        )
                        break
        endif = self._find_matching(segments, i, end, "if", ("endif",))
        else_at = None
        depth = 0
        for j in range(i + 1, endif):
            seg = segments[j]
            if seg.kind != "code":
                continue
            toks = tokenize_code(seg.body)
            if not toks or toks[0].kind != "kw":
                continue
            if toks[0].text == "if":
                depth += 1
            elif toks[0].text == "endif":
                depth -= 1
            elif toks[0].text == "else" and depth == 0:
                else_at = j
                break
        condition = bool(self._eval(condition_tokens))
        if condition:
            self._run_block(segments, i + 1, else_at or endif)
        elif else_at is not None:
            self._run_block(segments, else_at + 1, endif)
        return endif + 1
