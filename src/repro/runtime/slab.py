"""Software slab allocator (the VM heap manager the hardware offloads).

Section 4.3: "To handle dynamic memory management, the VM typically
uses the well-known slab allocation technique.  In slab allocation,
the VM allocates a large chunk of memory and breaks it up into smaller
segments of a fixed size according to the slab class's size and stores
the pointer to those segments in the associated free list."

This module implements that allocator over a simulated flat address
space.  It tracks everything the paper's Figure 8 plots:

* allocation-size distribution across slabs (Fig. 8a),
* live bytes per slab over time — flat for the four smallest slabs,
  demonstrating strong memory reuse (Fig. 8b/8c),
* free-list recycle rate vs fresh chunk carving, and kernel
  (``mmap``-style) refill calls, which the paper tunes down before
  adding hardware.

Costs: the paper measures malloc ≈ 69 µops and free ≈ 37 µops on
average in software (Section 5.2); the cost model consumes the event
counters kept here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.stats import Histogram, StatRegistry

#: Slab class upper bounds, bytes.  The paper's heap-manager analysis is
#: phrased in 32-byte steps up to 128 B (the four "smallest slabs" of
#: Figure 8b/8c) with larger classes beyond.
SLAB_CLASS_BOUNDS: tuple[int, ...] = (
    32, 64, 96, 128, 192, 256, 384, 512, 1024, 2048, 4096,
)

#: Size of the chunk carved from the kernel when a free list runs dry.
CHUNK_BYTES = 64 * 1024


def slab_class_for(size: int) -> Optional[int]:
    """Index of the smallest slab class holding ``size`` bytes.

    Returns ``None`` for requests larger than the biggest class (these
    go straight to the kernel in the real VM).
    """
    if size <= 0:
        raise ValueError("allocation size must be positive")
    for i, bound in enumerate(SLAB_CLASS_BOUNDS):
        if size <= bound:
            return i
    return None


@dataclass
class _SlabClass:
    """Book-keeping for one size class.

    ``recycle_list`` holds blocks that were freed (true memory reuse,
    the Figure 8b/8c property); ``fresh_list`` holds never-used blocks
    carved from kernel chunks.  Recycled blocks are preferred, like a
    real slab allocator's LIFO free list.
    """

    index: int
    block_size: int
    recycle_list: list[int] = field(default_factory=list)
    fresh_list: list[int] = field(default_factory=list)
    live_blocks: int = 0
    total_allocs: int = 0

    def pop_block(self) -> Optional[int]:
        if self.recycle_list:
            return self.recycle_list.pop()
        if self.fresh_list:
            return self.fresh_list.pop()
        return None


class SlabAllocator:
    """Slab allocator over a simulated address space.

    Parameters
    ----------
    base:
        Start of the simulated heap address range.
    stats:
        Optional shared stat registry.
    """

    def __init__(self, base: int = 0x1000_0000, stats: Optional[StatRegistry] = None) -> None:
        self.stats = stats if stats is not None else StatRegistry("slab")
        self._brk = base
        self._classes = [
            _SlabClass(index=i, block_size=bound)
            for i, bound in enumerate(SLAB_CLASS_BOUNDS)
        ]
        self._block_class: dict[int, int] = {}  # address -> class index
        self.size_histogram = Histogram(edges=list(SLAB_CLASS_BOUNDS))
        #: (time, live_bytes per class) samples for Figure 8b/8c
        self.usage_samples: list[tuple[int, tuple[int, ...]]] = []
        self._tick = 0

    # -- allocation API ---------------------------------------------------------

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the simulated address."""
        self._tick += 1
        self.size_histogram.record(size)
        cls_index = slab_class_for(size)
        self.stats.bump("malloc.calls")
        if cls_index is None:
            # Oversized: direct kernel allocation.
            self.stats.bump("malloc.kernel_direct")
            address = self._carve(size)
            self._block_class[address] = -1
            return address
        slab = self._classes[cls_index]
        slab.total_allocs += 1
        if slab.recycle_list:
            address = slab.recycle_list.pop()
            self.stats.bump("malloc.recycled")
        else:
            if not slab.fresh_list:
                self._refill(slab)
            address = slab.fresh_list.pop()
            self.stats.bump("malloc.fresh")
        slab.live_blocks += 1
        self._block_class[address] = cls_index
        return address

    def free(self, address: int) -> None:
        """Return a block to its slab's free list."""
        self._tick += 1
        self.stats.bump("free.calls")
        cls_index = self._block_class.pop(address, None)
        if cls_index is None:
            raise ValueError(f"free of unallocated address 0x{address:x}")
        if cls_index == -1:
            self.stats.bump("free.kernel_direct")
            return
        slab = self._classes[cls_index]
        slab.live_blocks -= 1
        slab.recycle_list.append(address)

    def pop_free_block(self, cls_index: int) -> Optional[int]:
        """Hand a free block to the hardware prefetcher (Section 4.3).

        Returns ``None`` when the free list is empty and a fresh chunk
        carve would be needed — the prefetcher then performs the carve
        through :meth:`malloc` semantics instead.
        """
        slab = self._classes[cls_index]
        address = slab.pop_block()
        if address is None:
            self._refill(slab)
            self.stats.bump("prefetch.refills")
            address = slab.fresh_list.pop()
        self.stats.bump("prefetch.pops")
        slab.live_blocks += 1
        self._block_class[address] = cls_index
        return address

    def push_free_block(self, cls_index: int, address: int) -> None:
        """Accept a block flushed back by the hardware heap manager."""
        slab = self._classes[cls_index]
        if self._block_class.pop(address, None) is not None:
            slab.live_blocks -= 1
        slab.recycle_list.append(address)
        self.stats.bump("hwflush.pushes")

    def release_arenas(self) -> int:
        """Request teardown: return idle arena memory to the kernel.

        PHP's request-scoped heap hands its arenas back (``madvise``-
        class calls) once a request completes; every future request
        then pays kernel carving again.  Section 3's allocation tuning
        exists to avoid exactly this churn — see
        :class:`repro.optim.alloc_tuning.TunedSlabAllocator`, which
        overrides this to cache the chunks instead.  Returns the
        number of kernel release calls made.
        """
        releases = 0
        for slab in self._classes:
            idle_blocks = len(slab.recycle_list) + len(slab.fresh_list)
            idle_bytes = idle_blocks * slab.block_size
            releases += (idle_bytes + CHUNK_BYTES - 1) // CHUNK_BYTES
            slab.recycle_list.clear()
            slab.fresh_list.clear()
        self.stats.bump("kernel.chunk_releases", releases)
        return releases

    def kernel_calls(self) -> int:
        """Total kernel round trips (carve + release)."""
        return (
            self.stats.get("kernel.chunk_allocs")
            + self.stats.get("kernel.chunk_releases")
        )

    # -- measurement -------------------------------------------------------------

    def sample_usage(self) -> None:
        """Record live bytes per class (one point of Figure 8b/8c)."""
        snapshot = tuple(
            slab.live_blocks * slab.block_size for slab in self._classes
        )
        self.usage_samples.append((self._tick, snapshot))

    def live_bytes(self, cls_index: Optional[int] = None) -> int:
        """Current live bytes, overall or for one class."""
        if cls_index is not None:
            slab = self._classes[cls_index]
            return slab.live_blocks * slab.block_size
        return sum(s.live_blocks * s.block_size for s in self._classes)

    def recycle_rate(self) -> float:
        """Fraction of class allocations served from a free list."""
        recycled = self.stats.get("malloc.recycled")
        fresh = self.stats.get("malloc.fresh")
        total = recycled + fresh
        return recycled / total if total else 0.0

    @property
    def class_count(self) -> int:
        return len(self._classes)

    def block_size(self, cls_index: int) -> int:
        return self._classes[cls_index].block_size

    # -- internals ----------------------------------------------------------------

    def _refill(self, slab: _SlabClass) -> None:
        """Carve a fresh kernel chunk into blocks for ``slab``."""
        self.stats.bump("kernel.chunk_allocs")
        chunk = self._carve(CHUNK_BYTES)
        count = CHUNK_BYTES // slab.block_size
        for i in range(count):
            slab.fresh_list.append(chunk + i * slab.block_size)

    def _carve(self, size: int) -> int:
        address = self._brk
        # Keep 16-byte alignment like a real allocator would.
        self._brk += (size + 15) & ~15
        return address
