"""Symbol tables and the ``extract`` idiom.

Section 4.2: "the PHP ``extract`` command is commonly used to import
key-value pairs from a hash map into a local symbol table in order to
communicate their values later to an appropriate application template
... Populating such a symbol table always occurs using dynamic key
names."  A symbol table *is* a hash map (footnote 3), so this module
is a thin veneer over :class:`repro.runtime.phparray.PhpArray` that
names the two access idioms the workload generators model:

* ``extract``  — bulk import with dynamic keys (always-dynamic SETs),
* scoped communication — a function publishing values (for example a
  compiled regexp's FSM table under its pattern string) for later
  functions to GET.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.common.stats import StatRegistry
from repro.runtime.phparray import PhpArray


class SymbolTable:
    """A named scope mapping variable names to values."""

    def __init__(
        self,
        name: str,
        base_address: int = 0,
        stats: Optional[StatRegistry] = None,
    ) -> None:
        self.name = name
        self.array = PhpArray(base_address=base_address, stats=stats)

    def define(self, key: str, value: Any) -> None:
        """Bind ``key`` in this scope (a dynamic-key SET)."""
        self.array.set(key, value)

    def lookup(self, key: str) -> Any:
        """Resolve ``key``; raises ``KeyError`` when unbound."""
        return self.array.get(key)

    def extract(self, source: PhpArray, prefix: str = "") -> int:
        """PHP ``extract()``: import every pair of ``source``.

        Returns the number of symbols imported.  Every import is a
        dynamic-key SET — exactly the access pattern software methods
        (inline caching / hash map inlining) cannot specialize and the
        hardware hash table targets.
        """
        imported = 0
        for key, value in source.items():
            self.define(prefix + key, value)
            imported += 1
        return imported

    def compact(self, names: list[str]) -> PhpArray:
        """PHP ``compact()``: export named bindings into a fresh array."""
        out = PhpArray(base_address=self.array.base_address ^ 0x5A5A)
        for name in names:
            try:
                out.set(name, self.lookup(name))
            except KeyError:
                continue
        return out

    def __contains__(self, key: str) -> bool:
        return key in self.array

    def __len__(self) -> int:
        return len(self.array)

    def __repr__(self) -> str:
        return f"SymbolTable({self.name!r}, {len(self)} bindings)"


class ScopeStack:
    """Global scope plus a stack of per-call local scopes."""

    def __init__(self, stats: Optional[StatRegistry] = None) -> None:
        self._stats = stats
        self._next_base = 0x7F00_0000
        self.globals = SymbolTable("globals", self._fresh_base(), stats)
        self._locals: list[SymbolTable] = []

    def _fresh_base(self) -> int:
        base = self._next_base
        self._next_base += 0x100
        return base

    def push(self, name: str) -> SymbolTable:
        """Enter a function: allocate a short-lived local symbol table."""
        table = SymbolTable(name, self._fresh_base(), self._stats)
        self._locals.append(table)
        return table

    def pop(self) -> SymbolTable:
        """Leave a function: its symbol table becomes dead (short-lived)."""
        if not self._locals:
            raise IndexError("no local scope to pop")
        return self._locals.pop()

    @property
    def current(self) -> SymbolTable:
        return self._locals[-1] if self._locals else self.globals

    def resolve(self, key: str) -> Any:
        """PHP-style resolution: current scope, then globals."""
        try:
            return self.current.lookup(key)
        except KeyError:
            return self.globals.lookup(key)
