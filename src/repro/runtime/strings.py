"""Software string library with an SSE-class cost model.

Section 4.4 motivates the string accelerator against "the currently
optimal software with SSE extensions": scan-type operations process
16 bytes per cycle in the best case, with per-call fixed overhead and
per-byte work for the transforming operations.  This module implements
the PHP string functions the three applications exercise —
find/compare/replace/trim/case-conversion/translate plus
``htmlspecialchars`` — over real Python strings while charging a
calibrated µop/cycle cost for each call.

The results are functionally exact (tests compare against Python's own
string methods); only the cost accounting is a model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.stats import StatRegistry

#: Bytes an SSE4.2-class implementation inspects per cycle on the scan path.
SSE_BYTES_PER_CYCLE = 16
#: Fixed call overhead in µops (dispatch, length checks, setup).
CALL_OVERHEAD_UOPS = 18
#: µops issued per scanned 16-byte block (load, pcmpestri, branch, ptr add).
UOPS_PER_SSE_BLOCK = 4
#: µops per byte for (partially vectorized) transform passes.
UOPS_PER_TAIL_BYTE = 1.4

#: The HTML special characters ``htmlspecialchars`` rewrites.
HTML_ESCAPES = {
    "&": "&amp;",
    '"': "&quot;",
    "'": "&#039;",
    "<": "&lt;",
    ">": "&gt;",
}


@dataclass
class StringOpResult:
    """Outcome of one library call: the value plus its modeled cost."""

    value: object
    uops: int
    cycles: int
    bytes_processed: int


class StringLibrary:
    """PHP-style string functions with per-call cost accounting.

    All methods return a :class:`StringOpResult`; the raw result value
    is in ``.value``.  Costs accumulate into ``self.stats`` under
    ``strlib.*`` so the experiment harness can compare against the
    hardware accelerator's counters.
    """

    def __init__(self, stats: Optional[StatRegistry] = None) -> None:
        self.stats = stats if stats is not None else StatRegistry("strlib")

    # -- cost plumbing -----------------------------------------------------------

    def _charge_scan(self, op: str, nbytes: int) -> tuple[int, int]:
        """Cost of scanning ``nbytes`` with SSE compare instructions."""
        blocks = (nbytes + SSE_BYTES_PER_CYCLE - 1) // SSE_BYTES_PER_CYCLE
        uops = CALL_OVERHEAD_UOPS + blocks * UOPS_PER_SSE_BLOCK
        cycles = max(1, blocks) + CALL_OVERHEAD_UOPS // 4
        self._record(op, uops, cycles, nbytes)
        return uops, cycles

    def _charge_transform(self, op: str, nbytes: int) -> tuple[int, int]:
        """Cost of a transforming pass (reads + writes every byte)."""
        uops = CALL_OVERHEAD_UOPS + int(nbytes * UOPS_PER_TAIL_BYTE)
        cycles = max(1, uops // 4)
        self._record(op, uops, cycles, nbytes)
        return uops, cycles

    def _record(self, op: str, uops: int, cycles: int, nbytes: int) -> None:
        self.stats.bump("strlib.calls")
        self.stats.bump(f"strlib.{op}.calls")
        self.stats.bump("strlib.uops", uops)
        self.stats.bump("strlib.cycles", cycles)
        self.stats.bump("strlib.bytes", nbytes)

    # -- scan-class functions ------------------------------------------------------

    def strlen(self, s: str) -> StringOpResult:
        """Length; PHP strings carry explicit lengths so this is O(1)."""
        self._record("strlen", CALL_OVERHEAD_UOPS // 3, 1, 0)
        return StringOpResult(len(s), CALL_OVERHEAD_UOPS // 3, 1, 0)

    def strpos(self, haystack: str, needle: str, offset: int = 0) -> StringOpResult:
        """First index of ``needle`` at/after ``offset``; -1 when absent."""
        index = haystack.find(needle, offset)
        scanned = (index - offset + len(needle)) if index >= 0 else (len(haystack) - offset)
        uops, cycles = self._charge_scan("strpos", max(scanned, 0))
        return StringOpResult(index, uops, cycles, max(scanned, 0))

    def strcmp(self, a: str, b: str) -> StringOpResult:
        """Three-way comparison (-1/0/1)."""
        limit = min(len(a), len(b))
        diverge = limit
        for i in range(limit):
            if a[i] != b[i]:
                diverge = i
                break
        uops, cycles = self._charge_scan("strcmp", diverge + 1)
        result = (a > b) - (a < b)
        return StringOpResult(result, uops, cycles, diverge + 1)

    def strspn_class(self, s: str, allowed: str) -> StringOpResult:
        """Length of the prefix made only of ``allowed`` characters."""
        n = 0
        allowed_set = set(allowed)
        for ch in s:
            if ch not in allowed_set:
                break
            n += 1
        uops, cycles = self._charge_scan("strspn", n + 1)
        return StringOpResult(n, uops, cycles, n + 1)

    # -- transform-class functions ---------------------------------------------------

    def str_replace(self, search: str, replace: str, subject: str) -> StringOpResult:
        """Replace all occurrences (PHP ``str_replace``)."""
        value = subject.replace(search, replace)
        uops, cycles = self._charge_transform("replace", len(subject))
        return StringOpResult(value, uops, cycles, len(subject))

    def strtolower(self, s: str) -> StringOpResult:
        value = s.lower()
        uops, cycles = self._charge_transform("tolower", len(s))
        return StringOpResult(value, uops, cycles, len(s))

    def strtoupper(self, s: str) -> StringOpResult:
        value = s.upper()
        uops, cycles = self._charge_transform("toupper", len(s))
        return StringOpResult(value, uops, cycles, len(s))

    def trim(self, s: str, chars: str = " \t\n\r\0\x0b") -> StringOpResult:
        """PHP ``trim``: strip leading/trailing characters in ``chars``."""
        value = s.strip(chars)
        scanned = (len(s) - len(value)) + 2
        uops, cycles = self._charge_scan("trim", scanned)
        return StringOpResult(value, uops, cycles, scanned)

    def strtr(self, s: str, mapping: dict[str, str]) -> StringOpResult:
        """PHP ``strtr`` with single-character mappings (translate)."""
        table = str.maketrans(mapping)
        value = s.translate(table)
        uops, cycles = self._charge_transform("translate", len(s))
        return StringOpResult(value, uops, cycles, len(s))

    def substr(self, s: str, start: int, length: Optional[int] = None) -> StringOpResult:
        """PHP ``substr`` (copy cost proportional to the slice)."""
        if length is None:
            value = s[start:]
        else:
            value = s[start:start + length] if length >= 0 else s[start:length]
        uops, cycles = self._charge_transform("substr", len(value))
        return StringOpResult(value, uops, cycles, len(value))

    def concat(self, parts: list[str]) -> StringOpResult:
        """String concatenation (the HTML-tag assembly workhorse)."""
        value = "".join(parts)
        uops, cycles = self._charge_transform("concat", len(value))
        return StringOpResult(value, uops, cycles, len(value))

    def htmlspecialchars(self, s: str) -> StringOpResult:
        """Escape HTML metacharacters (PHP ``htmlspecialchars``)."""
        out: list[str] = []
        for ch in s:
            out.append(HTML_ESCAPES.get(ch, ch))
        value = "".join(out)
        uops, cycles = self._charge_transform("htmlspecialchars", len(s))
        return StringOpResult(value, uops, cycles, len(s))

    # -- summary ------------------------------------------------------------------

    @property
    def total_uops(self) -> int:
        return self.stats.get("strlib.uops")

    @property
    def total_cycles(self) -> int:
        return self.stats.get("strlib.cycles")
