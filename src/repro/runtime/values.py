"""PHP value model: dynamic types and reference counting.

HHVM represents every PHP value as a typed cell (a ``TypedValue``)
whose heap-allocated payloads (strings, arrays, objects) carry a
reference count.  The paper identifies two abstraction overheads tied
to this representation:

* **dynamic type checks** guarding the specialized code that inline
  caching emits, and
* **reference counting**, "spread across compiled code and many
  library functions", the single largest mitigated overhead
  (4.42 % of execution time on average, Section 5.2).

This module models both: every value operation that real HHVM would
refcount or type-check bumps a counter here, so the mitigation passes
in :mod:`repro.optim` have an honest event stream to act on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.common.stats import StatRegistry


class PhpType(enum.Enum):
    """The dynamic types a PHP cell can hold (HHVM DataType subset)."""

    NULL = "null"
    BOOL = "bool"
    INT = "int"
    DOUBLE = "double"
    STRING = "string"
    ARRAY = "array"
    OBJECT = "object"

    @property
    def is_refcounted(self) -> bool:
        """Heap-allocated payloads carry refcounts; scalars do not."""
        return self in (PhpType.STRING, PhpType.ARRAY, PhpType.OBJECT)


@dataclass
class PhpValue:
    """A typed PHP cell with a reference count on heap payloads.

    ``payload`` holds the Python-native representation; the simulation
    treats it as opaque except for strings and arrays where the
    accelerators need the actual content.
    """

    type: PhpType
    payload: Any = None
    refcount: int = 1

    @staticmethod
    def null() -> "PhpValue":
        return PhpValue(PhpType.NULL, None)

    @staticmethod
    def of_int(v: int) -> "PhpValue":
        return PhpValue(PhpType.INT, v)

    @staticmethod
    def of_bool(v: bool) -> "PhpValue":
        return PhpValue(PhpType.BOOL, v)

    @staticmethod
    def of_double(v: float) -> "PhpValue":
        return PhpValue(PhpType.DOUBLE, v)

    @staticmethod
    def of_string(v: str) -> "PhpValue":
        return PhpValue(PhpType.STRING, v)

    @staticmethod
    def of_array(v: Any) -> "PhpValue":
        return PhpValue(PhpType.ARRAY, v)

    def __repr__(self) -> str:
        return f"PhpValue({self.type.value}, {self.payload!r}, rc={self.refcount})"


class ValueRuntime:
    """Tracks refcount and type-check events over PHP values.

    The counters recorded here are the inputs to the two hardware
    mitigations the paper adopts from prior work:

    * ``refcount.incref`` / ``refcount.decref`` — events the hardware
      reference-counting proposal (Joao et al., ISCA'09 [46]) absorbs,
    * ``typecheck.checks`` — events the checked-load proposal
      (Anderson et al., HPCA'11 [22]) folds into the cache subsystem.
    """

    #: x86 µops a software incref/decref costs (load, add, store, branch).
    UOPS_PER_RC_OP = 4
    #: x86 µops for a guard type check (cmp + branch).
    UOPS_PER_TYPE_CHECK = 2

    def __init__(self) -> None:
        self.stats = StatRegistry("values")

    # -- reference counting --------------------------------------------------

    def incref(self, value: PhpValue) -> None:
        """Take a new reference; counted only for refcounted payloads."""
        if value.type.is_refcounted:
            value.refcount += 1
            self.stats.bump("refcount.incref")
            self.stats.bump("refcount.uops", self.UOPS_PER_RC_OP)

    def decref(self, value: PhpValue) -> bool:
        """Drop a reference.  Returns True when the payload dies."""
        if not value.type.is_refcounted:
            return False
        value.refcount -= 1
        self.stats.bump("refcount.decref")
        self.stats.bump("refcount.uops", self.UOPS_PER_RC_OP)
        if value.refcount <= 0:
            self.stats.bump("refcount.destroys")
            return True
        return False

    # -- dynamic type checks --------------------------------------------------

    def type_check(self, value: PhpValue, expected: PhpType) -> bool:
        """Guard check emitted around inline-cache specialized code."""
        self.stats.bump("typecheck.checks")
        self.stats.bump("typecheck.uops", self.UOPS_PER_TYPE_CHECK)
        passed = value.type is expected
        if not passed:
            self.stats.bump("typecheck.misses")
        return passed

    # -- derived views ---------------------------------------------------------

    @property
    def refcount_uops(self) -> int:
        return self.stats.get("refcount.uops")

    @property
    def typecheck_uops(self) -> int:
        return self.stats.get("typecheck.uops")
