"""Software runtime substrate: the HHVM-like layer the accelerators offload.

Contents
--------
* :mod:`repro.runtime.values`   — typed PHP cells, refcount/type-check events
* :mod:`repro.runtime.phparray` — insertion-ordered hash map (PHP array)
* :mod:`repro.runtime.slab`     — slab allocator with per-class usage tracking
* :mod:`repro.runtime.strings`  — SSE-cost-modeled string library
* :mod:`repro.runtime.symbols`  — symbol tables, ``extract``/``compact``
"""

from repro.runtime.interp import (
    AcceleratedBackend,
    MiniPhpError,
    MiniPhpInterpreter,
    SoftwareBackend,
    split_template,
    tokenize_code,
)
from repro.runtime.phparray import PhpArray, php_array_hash
from repro.runtime.slab import (
    CHUNK_BYTES,
    SLAB_CLASS_BOUNDS,
    SlabAllocator,
    slab_class_for,
)
from repro.runtime.strings import StringLibrary, StringOpResult
from repro.runtime.symbols import ScopeStack, SymbolTable
from repro.runtime.values import PhpType, PhpValue, ValueRuntime

__all__ = [
    "MiniPhpInterpreter",
    "MiniPhpError",
    "SoftwareBackend",
    "AcceleratedBackend",
    "split_template",
    "tokenize_code",
    "PhpArray",
    "php_array_hash",
    "SlabAllocator",
    "slab_class_for",
    "SLAB_CLASS_BOUNDS",
    "CHUNK_BYTES",
    "StringLibrary",
    "StringOpResult",
    "ScopeStack",
    "SymbolTable",
    "PhpType",
    "PhpValue",
    "ValueRuntime",
]
