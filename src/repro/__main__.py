"""Command-line interface: ``python -m repro <command>``.

Regenerates the paper's figures from the terminal without writing any
code.  ``python -m repro all`` reproduces the whole evaluation.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.rng import DEFAULT_SEED


def _cmd_fig14(args) -> None:
    from repro.core import figure14_report, full_evaluation
    print(figure14_report(full_evaluation(seed=args.seed,
                                          requests=args.requests,
                                          jobs=args.jobs)))


def _cmd_fig15(args) -> None:
    from repro.core import figure15_report, full_evaluation
    print(figure15_report(full_evaluation(seed=args.seed,
                                          requests=args.requests,
                                          jobs=args.jobs)))


def _cmd_energy(args) -> None:
    from repro.core import energy_report, full_evaluation
    print(energy_report(full_evaluation(seed=args.seed,
                                        requests=args.requests,
                                        jobs=args.jobs)))


def _cmd_fig1(args) -> None:
    from repro.core import leaf_distribution
    from repro.core.report import format_table, pct
    dist = leaf_distribution(seed=args.seed)
    checkpoints = [1, 5, 10, 26, 50, 100]
    rows = [
        [name] + [pct(cum[min(n, len(cum)) - 1], 1) for n in checkpoints]
        for name, cum in sorted(dist.items())
    ]
    print(format_table(
        ["workload"] + [f"top {n}" for n in checkpoints], rows,
        title="Figure 1: cumulative cycle share over leaf functions",
    ))


def _cmd_uarch(args) -> None:
    from repro.core.experiment import uarch_characterization
    from repro.core.report import format_table
    from repro.workloads.apps import php_applications
    rows = []
    for app in php_applications():
        r = uarch_characterization(
            app, seed=args.seed, instructions=args.instructions
        )
        rows.append([
            app.name, f"{r.branch_mpki:.2f}",
            f"{100 * r.btb_hit_rate_4k:.2f}%",
            f"{100 * r.btb_hit_rate_64k:.2f}%",
            f"{r.l1i_mpki:.2f}", f"{r.l1d_mpki:.2f}", f"{r.l2_mpki:.2f}",
        ])
    print(format_table(
        ["app", "branch MPKI", "BTB 4K", "BTB 64K",
         "L1I MPKI", "L1D MPKI", "L2 MPKI"],
        rows, title="Section 2: microarchitectural characterization",
    ))


def _cmd_fig7(args) -> None:
    from repro.core.experiment import hash_hit_rate_sweep
    from repro.core.report import format_table, pct
    from repro.workloads.apps import wordpress
    sizes = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
    sweep = hash_hit_rate_sweep(
        wordpress(), sizes=sizes, seed=args.seed, requests=args.requests
    )
    print(format_table(
        ["entries", "hit rate"],
        [[str(s), pct(sweep[s])] for s in sizes],
        title="Figure 7: hardware hash-table hit rate vs entries",
    ))


def _cmd_fig12(args) -> None:
    from repro.core.experiment import regex_opportunity
    from repro.core.report import format_table, pct
    opp = regex_opportunity(seed=args.seed, requests=args.requests)
    print(format_table(
        ["app", "skippable content"],
        [[app, pct(v)] for app, v in opp.items()],
        title="Figure 12: content sifting + reuse opportunity",
    ))


def _cmd_area(args) -> None:
    from repro.core.report import format_table, pct
    from repro.power import accelerator_area_report
    report = accelerator_area_report()
    rows = [[name, f"{mm2:.4f}"] for name, mm2 in report.rows()]
    rows.append(["TOTAL", f"{report.total_mm2:.4f}"])
    rows.append(["fraction of core", pct(report.core_fraction)])
    print(format_table(["structure", "mm² (45 nm)"], rows,
                       title="Section 5.1: accelerator area"))


def _cmd_ablation(args) -> None:
    from repro.core.ablation import run_ablations
    from repro.core.report import format_table, pct
    results = run_ablations(requests=args.requests, seed=args.seed)
    print(format_table(
        ["variant", "efficiency", "benefit given up"],
        [[r.name, pct(r.efficiency), pct(r.efficiency_loss)]
         for r in results],
        title="Accelerator design ablations (WordPress)",
    ))


def _cmd_resilience(args) -> None:
    from repro.core.latency import request_latency_report
    from repro.core.report import resilience_report
    from repro.resilience import (
        ResilientServerConfig,
        run_matrix,
        standard_policies,
        standard_scenarios,
    )
    rep = request_latency_report(
        "wordpress", requests=max(args.requests, 8), seed=args.seed
    )
    cfg = ResilientServerConfig(
        workers=4, requests=1_200, warmup_requests=30, offered_load=0.6
    )
    reports = run_matrix(
        rep.accelerated.samples, rep.software.samples,
        standard_scenarios(), standard_policies(), cfg, seed=args.seed,
    )
    print(resilience_report(reports))


def _cmd_fleet(args) -> None:
    from dataclasses import replace

    from repro.core.latency import request_latency_report
    from repro.core.report import fleet_report
    from repro.fleet import (
        CacheTierConfig,
        FleetConfig,
        homogeneous_fleet,
        mixed_fleet,
        run_fleet,
        run_fleet_matrix,
    )
    from repro.resilience.faults import FaultScenario

    smoke = bool(getattr(args, "smoke", False))
    rep = request_latency_report(
        "wordpress", requests=max(args.requests, 8), seed=args.seed
    )
    accel = rep.accelerated.samples
    soft = rep.software.samples
    cache = CacheTierConfig(shards=4, shard_capacity=256)
    cfg = FleetConfig(
        requests=300 if smoke else 3_000,
        warmup_requests=20 if smoke else 100,
        offered_load=0.7,
    )
    cached = homogeneous_fleet("accel-4", accel, nodes=4, cache=cache)
    topologies = [
        cached,
        cached.without_cache(),
        mixed_fleet("mixed-2+2", accel, soft, 2, 2, cache=cache),
        homogeneous_fleet(
            "software-4", soft, nodes=4, kind="software", cache=cache
        ),
    ]
    balancers = (
        ["p2c"] if smoke
        else ["round-robin", "least-outstanding", "p2c"]
    )
    reports = run_fleet_matrix(
        topologies, balancers, cfg, seed=args.seed, jobs=args.jobs
    )
    # One storm cell: TTL-invalidation waves flushing shards mid-run.
    storm = FaultScenario(
        "cache-storms", accel_fault_rate=0.10,
        accel_fault_window_services=5.0,
    )
    reports.append(run_fleet(
        replace(cached, name="accel-4+storm"),
        replace(cfg, storm_scenario=storm),
        seed=args.seed,
    ))
    print(fleet_report(reports))


def _cmd_overload(args) -> None:
    from dataclasses import replace

    from repro.core.report import (
        format_table,
        overload_report,
        overload_timeline,
    )
    from repro.fleet import (
        defended_config,
        headline_scenarios,
        min_nodes_to_survive,
        overload_topology,
        run_overload_matrix,
        undefended_config,
    )

    smoke = bool(getattr(args, "smoke", False))
    topology = overload_topology()
    reports = run_overload_matrix(
        topology, headline_scenarios(smoke), seed=args.seed,
        jobs=args.jobs,
    )
    print(overload_report(reports))
    print()
    for report in reports:
        print(overload_timeline(report))
    print()
    # Node-count price of skipping the defenses: pin the storm to an
    # absolute rate so every fleet size faces the same traffic.
    storm_rate = 5.6
    need = {
        name: min_nodes_to_survive(
            lambda n: overload_topology(nodes=n),
            replace(cfg, arrival_rate=storm_rate),
            seed=args.seed,
        )
        for name, cfg in (
            ("undefended", undefended_config(smoke)),
            ("defended", defended_config(smoke)),
        )
    }
    print(format_table(
        ["scenario", "min nodes to ride out the storm"],
        [[name, str(n) if n is not None else f"> {8}"]
         for name, n in need.items()],
        title=f"Fleet sizing vs the same absolute storm "
              f"(rate {storm_rate} req/svc)",
    ))


def _cmd_export(args) -> None:
    from repro.core.export import save_evaluation_json
    out = save_evaluation_json(
        args.out, seed=args.seed, requests=args.requests, jobs=args.jobs
    )
    print(f"wrote {out}")


def _cmd_sens(args) -> None:
    from repro.core.report import format_table, pct
    from repro.core.sensitivity import (
        sweep_probe_width,
        sweep_reuse_content_bytes,
        sweep_reuse_entries,
        sweep_segment_size,
    )
    probe = sweep_probe_width(seed=args.seed, jobs=args.jobs)
    print(format_table(
        ["probe width", "hit rate"],
        [[str(w), pct(v)] for w, v in probe.items()],
        title="Sensitivity: hash hit rate vs probe width",
    ))
    print()
    seg = sweep_segment_size(seed=args.seed, jobs=args.jobs)
    print(format_table(
        ["segment bytes", "skip fraction", "HV bits"],
        [[str(s), pct(v["skip_fraction"]), f"{v['hv_bits']:.0f}"]
         for s, v in seg.items()],
        title="Sensitivity: content sifting vs segment size",
    ))
    print()
    content = sweep_reuse_content_bytes(seed=args.seed, jobs=args.jobs)
    print(format_table(
        ["content bytes", "skip rate"],
        [[str(s), pct(v)] for s, v in content.items()],
        title="Sensitivity: content reuse vs memoized bytes",
    ))
    print()
    entries = sweep_reuse_entries(seed=args.seed, jobs=args.jobs)
    print(format_table(
        ["entries", "jump rate"],
        [[str(n), pct(v)] for n, v in entries.items()],
        title="Sensitivity: reuse-table jump rate vs entries",
    ))


def _cmd_perf(args) -> None:
    from repro.core.perf import format_perf_report, run_perf
    from repro.core.report import perf_observability_report
    backend = getattr(args, "backend", None)
    payload = run_perf(
        smoke=bool(getattr(args, "smoke", False)),
        seed=args.seed,
        backends=(backend,) if backend else None,
    )
    print(format_perf_report(payload))
    print()
    print(perf_observability_report())


def _cmd_backends(args) -> None:
    from repro.accel.registry import available_backends
    from repro.core.report import format_table
    rows = []
    for row in available_backends():
        rows.append([
            row["name"],
            "yes" if row["available"] else f"degraded ({row['reason']})",
            ", ".join(row["kernels"]) or "(optimized fallback)",
        ])
    print(format_table(
        ["backend", "available", "registered kernels"], rows,
        title="Accelerator backend registry",
    ))


def _cmd_conform(args) -> None:
    from repro.conformance.fuzzer import (
        run_conformance,
        write_failure_artifacts,
    )
    from repro.core.report import conformance_report
    report = run_conformance(
        smoke=bool(getattr(args, "smoke", False)),
        seed=args.seed,
        jobs=args.jobs,
    )
    print(conformance_report(report))
    artifact = write_failure_artifacts(report)
    if artifact is not None:
        print(f"\nshrunk failing cases written to {artifact}")
    if not report.ok:
        raise SystemExit(1)


def _cmd_serve(args) -> None:
    from repro.core.report import serve_report
    from repro.serve.run import run_serve
    payload = run_serve(
        bench=bool(getattr(args, "bench", False)),
        smoke=bool(getattr(args, "smoke", False)),
        seed=args.seed,
        backend=getattr(args, "backend", None) or "optimized",
    )
    print(serve_report(payload))
    print()
    print("served-bytes oracle: PASS (HTTP responses byte-identical "
          "to direct renders)")
    if not payload["slo_ok"]:
        raise SystemExit(1)


def _cmd_calibrate(args) -> None:
    from repro.calibrate.run import run_calibrate
    from repro.core.report import calibrate_report
    payload = run_calibrate(
        smoke=bool(getattr(args, "smoke", False)),
        seed=args.seed,
        jobs=args.jobs,
        telemetry=getattr(args, "telemetry", None),
    )
    print(calibrate_report(payload))
    if not payload["ok"]:
        raise SystemExit(1)


def _cmd_lint(args) -> None:
    from pathlib import Path

    from repro import analysis

    paths = args.paths or None
    if args.fix_waivers:
        changed = analysis.fix_waivers(paths)
        for path in changed:
            print(f"rewrote cache-key-covers waivers in {path}")
        if not changed:
            print("all cache-key-covers waivers already accurate")
    findings = analysis.run(paths)
    if args.rule:
        try:
            selected = analysis.match_rules(args.rule)
        except ValueError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            raise SystemExit(2)
        findings = [f for f in findings if f.rule in selected]
    baseline_path = Path(args.baseline)
    if args.update_baseline:
        out = analysis.save_baseline(findings, baseline_path)
        print(f"wrote baseline with {len(findings)} finding(s) to {out}")
        return
    grandfathered = analysis.load_baseline(baseline_path)
    fresh, suppressed = analysis.apply_baseline(findings, grandfathered)
    shown = str(baseline_path) if grandfathered else None
    if args.json:
        sys.stdout.write(
            analysis.render_json(fresh, suppressed, shown)
        )
    else:
        print(analysis.render_text(fresh, suppressed))
    if fresh:
        raise SystemExit(1)


def _cmd_all(args) -> None:
    for fn in (_cmd_fig1, _cmd_uarch, _cmd_fig7, _cmd_fig12,
               _cmd_fig14, _cmd_fig15, _cmd_energy, _cmd_area,
               _cmd_resilience, _cmd_fleet):
        fn(args)
        print()


_COMMANDS = {
    "fig1": (_cmd_fig1, "Figure 1: leaf-function distribution"),
    "uarch": (_cmd_uarch, "Section 2 / Figure 2: µarch characterization"),
    "fig7": (_cmd_fig7, "Figure 7: hash-table hit-rate sweep"),
    "fig12": (_cmd_fig12, "Figure 12: regexp skip opportunity"),
    "fig14": (_cmd_fig14, "Figure 14: execution-time results"),
    "fig15": (_cmd_fig15, "Figure 15: per-accelerator benefits"),
    "energy": (_cmd_energy, "Section 5.2: energy savings"),
    "area": (_cmd_area, "Section 5.1: area budget"),
    "ablation": (_cmd_ablation, "design-choice ablations"),
    "resilience": (_cmd_resilience,
                   "fault-injection scenarios × resilience policies"),
    "fleet": (_cmd_fleet,
              "multi-node fleets × balancers with the object cache"),
    "overload": (_cmd_overload,
                 "flash crowds, retry storms, metastability verdicts"),
    "sens": (_cmd_sens, "sensitivity sweeps over accelerator sizing"),
    "perf": (_cmd_perf,
             "wall-clock speedups vs the pinned reference kernels"),
    "backends": (_cmd_backends,
                 "list registered accelerator backends + availability"),
    "conform": (_cmd_conform,
                "differential oracles + metamorphic fuzzing vs shadows"),
    "serve": (_cmd_serve,
              "live asyncio HTTP server + open-loop load, wall-clock "
              "SLOs"),
    "calibrate": (_cmd_calibrate,
                  "fit the fleet twin to serve telemetry, report "
                  "prediction MAPE + fitted what-if capacity"),
    "lint": (_cmd_lint,
             "static analysis: determinism / pool purity / cache keys "
             "/ async safety / schema contracts"),
    "export": (_cmd_export, "write the evaluation as JSON"),
    "all": (_cmd_all, "everything above"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate results from 'Architectural Support for "
                    "Server-Side PHP Processing' (ISCA 2017).",
    )
    parser.add_argument("command", choices=sorted(_COMMANDS),
                        help="which result to regenerate")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--requests", type=int, default=5,
                        help="requests per app for evaluation commands")
    parser.add_argument("--instructions", type=int, default=400_000,
                        help="trace length for uarch characterization")
    parser.add_argument("--out", type=str, default="results.json",
                        help="output path for the export command")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny fast run (fleet/perf commands; used "
                             "by CI — perf --smoke skips the speedup "
                             "assertions)")
    parser.add_argument("--bench", action="store_true",
                        help="serve: run the open-loop load bench "
                             "(1k connections with --smoke, 10k "
                             "requested without) instead of the "
                             "self-test")
    parser.add_argument("--backend", type=str, default=None,
                        help="perf: measure only this backend; serve: "
                             "run the server on this backend's kernels "
                             "(default: optimized)")
    parser.add_argument("--telemetry", type=str, default=None,
                        help="calibrate: fit this repro-serve-telemetry/1 "
                             "JSONL instead of the self-consistency "
                             "twin stream")
    parser.add_argument("--jobs", type=int, default=None,
                        help="process-pool workers for sweep commands "
                             "(default: REPRO_JOBS env, else 1)")
    parser.add_argument("--json", action="store_true",
                        help="lint: emit the repro-lint/2 JSON payload "
                             "instead of text (exit 0 = clean, 1 = "
                             "fresh findings, 2 = usage error)")
    parser.add_argument("--rule", type=str, default=None,
                        help="lint: only report this rule id (ASY002) "
                             "or family prefix (ASY) — cheap re-runs "
                             "of one family")
    parser.add_argument("--fix-waivers", action="store_true",
                        help="lint: rewrite stale/missing cache-key-"
                             "covers waiver comments in place")
    parser.add_argument("--paths", nargs="*", default=None,
                        help="lint: files/directories to analyze "
                             "(default: the installed repro package)")
    parser.add_argument("--baseline", type=str,
                        default=".repro-lint-baseline.json",
                        help="lint: grandfathered-findings file")
    parser.add_argument("--update-baseline", action="store_true",
                        help="lint: rewrite the baseline to the "
                             "current findings instead of failing")
    args = parser.parse_args(argv)
    _COMMANDS[args.command][0](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
