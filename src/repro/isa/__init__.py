"""ISA extensions (Section 4.6) and the accelerator complex."""

from repro.isa.dispatch import AcceleratorComplex, ComplexConfig
from repro.isa.multicore import CoherenceEvent, MulticoreSystem
from repro.isa.instructions import (
    ISA_EXTENSIONS,
    Instruction,
    REGEX_API,
    Unit,
    instruction,
)

__all__ = [
    "AcceleratorComplex",
    "ComplexConfig",
    "MulticoreSystem",
    "CoherenceEvent",
    "ISA_EXTENSIONS",
    "Instruction",
    "REGEX_API",
    "Unit",
    "instruction",
]
