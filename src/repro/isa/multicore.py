"""Multicore coherence scenarios (Sections 4.1e and 4.2).

The accelerators "participate in the cache coherence mechanism": each
hardware hash table holds exclusive permission over the address ranges
of the maps it caches; remote requests are forwarded via the RTT and
flush the map.  The paper's empirical claim — "in practice ... there
is virtually no coherence activity due to the hash map accelerator"
because the target maps are small, process-private and short-lived —
is reproduced by the scenario tests built on this module.

The model is directory-based at map granularity: one owner per map
base address, with flush-on-remote-access, which is what the paper's
range-based exclusive-permission scheme degenerates to for the small
maps involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.stats import StatRegistry
from repro.isa.dispatch import AcceleratorComplex
from repro.runtime.phparray import PhpArray


@dataclass
class CoherenceEvent:
    """One directory action, for inspection in tests/examples."""

    kind: str          # 'acquire' | 'forward_flush' | 'migration_flush'
                       # | 'crash' | 'restart'
    base_address: int
    from_core: Optional[int]
    to_core: Optional[int]
    flushed_entries: int = 0


class MulticoreSystem:
    """N cores, each with its own accelerator complex, one directory."""

    def __init__(self, cores: int = 2) -> None:
        if cores < 1:
            raise ValueError("need at least one core")
        self.cores = [AcceleratorComplex() for _ in range(cores)]
        self.stats = StatRegistry("multicore")
        self._owner: dict[int, int] = {}   # map base -> core id
        self.events: list[CoherenceEvent] = []
        self._next_base = 0x7000_0000

    # -- map management -----------------------------------------------------------

    def new_shared_map(self) -> PhpArray:
        """Create a software map visible to every core."""
        self._next_base += 0x400
        array = PhpArray(base_address=self._next_base)
        for core in self.cores:
            core.register_map(array)
        return array

    # -- coherent accelerator access -------------------------------------------------

    def _acquire(self, core_id: int, base_address: int) -> int:
        """Take exclusive permission for a map; flush any remote owner.

        Returns the number of hardware entries flushed remotely (0 in
        the private-map common case).
        """
        owner = self._owner.get(base_address)
        if owner is None:
            self._owner[base_address] = core_id
            self.stats.bump("multicore.acquires")
            self.events.append(CoherenceEvent(
                "acquire", base_address, None, core_id
            ))
            return 0
        if owner == core_id:
            return 0
        flushed = self.cores[owner].remote_request(base_address)
        self._owner[base_address] = core_id
        self.stats.bump("multicore.forward_flushes")
        self.events.append(CoherenceEvent(
            "forward_flush", base_address, owner, core_id, flushed
        ))
        return flushed

    def hash_set(self, core_id: int, array: PhpArray, key: str, value) -> None:
        """Coherent hashtableset from ``core_id``."""
        self._acquire(core_id, array.base_address)
        outcome = self.cores[core_id].hash_table.set(
            key, array.base_address, value
        )
        if outcome.software_fallback:
            array.set(key, value)

    def hash_get(self, core_id: int, array: PhpArray, key: str):
        """Coherent hashtableget from ``core_id``."""
        self._acquire(core_id, array.base_address)
        complex_ = self.cores[core_id]
        outcome = complex_.hash_table.get(key, array.base_address)
        if outcome.hit:
            return outcome.value_ptr
        value = array.get_default(key)
        if value is not None:
            complex_.hash_table.insert_clean(
                key, array.base_address, value
            )
        return value

    def free_map(self, core_id: int, array: PhpArray) -> None:
        """RTT bulk invalidate + directory release."""
        self.cores[core_id].hash_table.free_map(array.base_address)
        self._owner.pop(array.base_address, None)
        for core in self.cores:
            core.drop_map(array.base_address)

    # -- process migration ---------------------------------------------------------------

    def migrate_process(self, from_core: int, to_core: int) -> dict[str, int]:
        """Context-switch a process to another core (§4.6 choreography).

        * the heap manager flushes its free lists (``hmflush``),
        * the string unit saves its matrix (``strwriteconfig``) and the
          destination restores it (``strreadconfig``),
        * the hash table needs no bulk action ("hardware coherent"):
          its maps flush lazily when the destination core touches them.
        """
        heap_flushed, saved = self.cores[from_core].context_switch_out()
        restore_cycles = self.cores[to_core].context_switch_in(saved)
        migrated = [
            base for base, owner in self._owner.items() if owner == from_core
        ]
        self.stats.bump("multicore.migrations")
        self.events.append(CoherenceEvent(
            "migration_flush", 0, from_core, to_core, heap_flushed
        ))
        return {
            "heap_blocks_flushed": heap_flushed,
            "string_restore_cycles": restore_cycles,
            "hash_maps_pending_lazy_flush": len(migrated),
        }

    # -- fail-stop crashes ---------------------------------------------------------------

    def crash_core(self, core_id: int) -> dict[str, int]:
        """Fail-stop the core's accelerator complex (fault injection).

        Unlike :meth:`migrate_process`, nothing gets the chance to
        flush: the hardware free lists leak their cached blocks and
        dirty hash entries are lost before writeback, so the stale-flag
        protocol cannot save them.  The directory releases the core's
        map ownership so surviving cores re-acquire cleanly.  Returns
        the damage report the resilience layer accounts for.
        """
        complex_ = self.cores[core_id]
        leaked_blocks = complex_.heap_manager.cached_blocks()
        dirty_lost = sum(
            1 for e in complex_.hash_table._entries if e.valid and e.dirty
        )
        owned = [
            base for base, owner in self._owner.items() if owner == core_id
        ]
        for base in owned:
            del self._owner[base]
        self.stats.bump("multicore.crashes")
        self.stats.bump("multicore.crash_leaked_blocks", leaked_blocks)
        self.stats.bump("multicore.crash_dirty_lost", dirty_lost)
        self.events.append(CoherenceEvent(
            "crash", 0, core_id, None, dirty_lost
        ))
        return {
            "leaked_blocks": leaked_blocks,
            "dirty_entries_lost": dirty_lost,
            "maps_released": len(owned),
        }

    def restart_core(self, core_id: int) -> None:
        """Bring a crashed core back with a cold accelerator complex.

        Registered software maps are re-attached (they live in memory
        and survived the crash); all hardware state starts cold.
        """
        old = self.cores[core_id]
        fresh = AcceleratorComplex()
        for array in old._software_maps.values():
            fresh.register_map(array)
        self.cores[core_id] = fresh
        self.stats.bump("multicore.restarts")
        self.events.append(CoherenceEvent("restart", 0, None, core_id))

    # -- reporting ----------------------------------------------------------------------------

    def coherence_traffic(self) -> int:
        """Remote flushes observed (the paper: 'virtually no' such)."""
        return self.stats.get("multicore.forward_flushes")
