"""ISA extensions (Section 4.6).

Every accelerator is invoked through new instructions; "the zero flag
is raised upon a miss ... in which case the code branches to the
software handler fallback."  This module defines the instruction set
as data — mnemonic, operands, flag semantics, which unit it drives —
so the dispatcher, the documentation, and the tests all share one
source of truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Unit(enum.Enum):
    """The accelerator a new instruction talks to."""

    HASH_TABLE = "hardware hash table"
    HEAP_MANAGER = "hardware heap manager"
    STRING = "string accelerator"
    REGEX = "regexp accelerator (reuse table / HV plumbing)"


@dataclass(frozen=True)
class Instruction:
    """One ISA extension."""

    mnemonic: str
    unit: Unit
    operands: str
    sets_zero_flag: bool
    zero_flag_meaning: str
    description: str


ISA_EXTENSIONS: dict[str, Instruction] = {
    i.mnemonic: i
    for i in (
        Instruction(
            "hashtableget", Unit.HASH_TABLE, "rdst, rkey, rbase",
            True, "GET missed: branch to software hash-map walk",
            "Look up (base address, key); on hit rdst holds the value "
            "pointer and the entry's LRU stamp is refreshed.",
        ),
        Instruction(
            "hashtableset", Unit.HASH_TABLE, "rkey, rbase, rval",
            True, "hash table overflow: branch to software insert",
            "Insert/update (base address, key) → value pointer; marks "
            "the entry dirty; silent with respect to memory.",
        ),
        Instruction(
            "hmmalloc", Unit.HEAP_MANAGER, "rdst, rsize",
            True, "requested size class empty: software refills",
            "Pop a block from the hardware free list selected by the "
            "size-class table (requests ≤ 128 B).",
        ),
        Instruction(
            "hmfree", Unit.HEAP_MANAGER, "raddr, rsize",
            True, "size class full: software spills one block (1 str)",
            "Push a block onto the hardware free list.",
        ),
        Instruction(
            "hmflush", Unit.HEAP_MANAGER, "(none)",
            False, "",
            "Flush all hardware free-list entries to the memory heap "
            "structures at a context switch; resumable across page "
            "faults to guarantee forward progress.",
        ),
        Instruction(
            "stringop", Unit.STRING, "op6, rdst, rsrc1, rsrc2",
            False, "",
            "Invoke the string accelerator; a 6-bit sub-opcode selects "
            "the function (trim, find, translate, ...).",
        ),
        Instruction(
            "strreadconfig", Unit.STRING, "raddr",
            False, "",
            "Populate the matching-matrix rows from memory if not "
            "already configured (complex functions; after context "
            "switches).",
        ),
        Instruction(
            "strwriteconfig", Unit.STRING, "raddr",
            False, "",
            "Store the accelerator's current matrix configuration to "
            "memory (before a context switch).",
        ),
        Instruction(
            "regexlookup", Unit.REGEX, "rdst, rpc, rcontent",
            True, "no jumpable entry: software traverses the FSM",
            "Search the content-reuse table for a PC, ASID, and "
            "content match; on a hit rdst holds the FSM state to jump "
            "to.",
        ),
        Instruction(
            "regexset", Unit.REGEX, "rpc, rstate",
            False, "",
            "Write the FSM state for the learned content size back "
            "into the reuse table (issued by the software handler).",
        ),
    )
}

#: The two API entry points that replace PCRE library calls (§4.6) —
#: not instructions, but part of the software-visible interface.
REGEX_API = ("regexp_sieve", "regexp_shadow")


def instruction(mnemonic: str) -> Instruction:
    """Look up one extension; raises ``KeyError`` for unknown names."""
    return ISA_EXTENSIONS[mnemonic]
