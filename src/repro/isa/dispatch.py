"""Accelerator complex: the SoC-side bundle behind the ISA extensions.

Owns one instance of each accelerator, wires the hardware hash table's
dirty-writeback path into the software maps (with the stale-flag
protocol of Section 4.2), and implements context-switch choreography:
``hmflush`` for the heap manager, ``strwriteconfig``/``strreadconfig``
for the string unit, nothing for the hash table ("the state of the
hash table is hardware coherent, so no cleanup operations are required
during context switches").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.accel.hash_table import HardwareHashTable, HashTableConfig
from repro.accel.heap_manager import HardwareHeapManager, HeapManagerConfig
from repro.accel.regex_accel import (
    ContentReuseTable,
    ContentSifter,
    ReuseAcceleratedMatcher,
    ReuseTableConfig,
)
from repro.accel.string_accel import (
    MatrixConfigState,
    StringAccelConfig,
    StringAccelerator,
)
from repro.common.stats import StatRegistry
from repro.runtime.phparray import PhpArray
from repro.runtime.slab import SlabAllocator


@dataclass
class ComplexConfig:
    """Configuration of the whole accelerator complex."""

    hash_table: HashTableConfig | None = None
    heap_manager: HeapManagerConfig | None = None
    string: StringAccelConfig | None = None
    reuse: ReuseTableConfig | None = None


class AcceleratorComplex:
    """All four Section-4 accelerators plus their software couplings."""

    def __init__(
        self,
        slab: Optional[SlabAllocator] = None,
        config: ComplexConfig | None = None,
    ) -> None:
        config = config or ComplexConfig()
        self.stats = StatRegistry("complex")
        self.slab = slab if slab is not None else SlabAllocator()
        self.hash_table = HardwareHashTable(config.hash_table)
        self.heap_manager = HardwareHeapManager(self.slab, config.heap_manager)
        self.string = StringAccelerator(config.string)
        self.reuse_table = ContentReuseTable(config.reuse)
        self.sifter = ContentSifter(self.string)
        self.reuse_matcher = ReuseAcceleratedMatcher(self.reuse_table)
        #: software hash maps by base address (coherence partners)
        self._software_maps: dict[int, PhpArray] = {}
        self.hash_table.writeback_handler = self._writeback
        #: dispatch mode: 'accelerated' normally, 'software' while a
        #: resilience circuit breaker holds the complex out of service
        self.dispatch_mode = "accelerated"

    # -- software-map coupling -----------------------------------------------------

    def register_map(self, array: PhpArray) -> None:
        """Register the software map behind a base address.

        The paper's coherence scheme needs the accelerator to find the
        software structure for dirty writebacks; the RTT provides the
        routing, this registry provides the destination.
        """
        self._software_maps[array.base_address] = array

    def software_map(self, base_address: int) -> PhpArray:
        return self._software_maps[base_address]

    def drop_map(self, base_address: int) -> None:
        self._software_maps.pop(base_address, None)

    def _writeback(self, base_address: int, key: str, value_ptr) -> None:
        """Dirty eviction: hardware writes the ordered table directly.

        The bucket array ("the hash table of the software hash map")
        goes stale when the key is new; the software rebuilds it on its
        next access (Section 4.2).
        """
        array = self._software_maps.get(base_address)
        if array is None:
            return
        array.hardware_writeback(key, value_ptr)
        self.stats.bump("complex.dirty_writebacks")

    # -- context switches --------------------------------------------------------------

    def context_switch_out(self) -> tuple[int, MatrixConfigState]:
        """Leave the core: hmflush + strwriteconfig.

        Returns (heap blocks flushed, saved string configuration).
        """
        self.stats.bump("complex.context_switches")
        flushed = self.heap_manager.hmflush()
        saved = self.string.strwriteconfig()
        return flushed, saved

    def context_switch_in(self, saved: MatrixConfigState) -> int:
        """Re-enter: strreadconfig restores the matrix (cycles spent)."""
        return self.string.strreadconfig(saved)

    # -- resilience: breaker-driven dispatch + fault injection ---------------------------

    def trip_to_software(self) -> None:
        """Circuit breaker opened: route new requests to software.

        Every accelerator has a documented software fallback (stale-flag
        writebacks for the hash table, ``hmflush`` + software slab for
        the heap manager, the plain FSM for regexps), so the complex can
        be taken out of the request path without a correctness loss —
        requests are simply re-costed onto the software path.
        """
        if self.dispatch_mode != "software":
            self.stats.bump("complex.breaker_trips")
        self.dispatch_mode = "software"

    def restore_accelerated(self) -> None:
        """Circuit breaker closed again: accelerated dispatch resumes."""
        if self.dispatch_mode != "accelerated":
            self.stats.bump("complex.breaker_resets")
        self.dispatch_mode = "accelerated"

    def note_software_request(self) -> None:
        """Account one request served on the software path while tripped."""
        self.stats.bump("complex.software_path_requests")

    def inject_fault(self, kind: str) -> int:
        """Apply one accelerator fault; returns affected entries/blocks.

        Kinds: ``hash_storm`` (entry invalidation storm),
        ``heap_outage`` / ``heap_repair`` (heap manager availability),
        ``reuse_flush`` (regex reuse-table wipe),
        ``string_config_loss`` (matching-matrix state loss).
        """
        self.stats.bump("complex.faults_injected")
        if kind == "hash_storm":
            return self.hash_table.inject_invalidation_storm()
        if kind == "heap_outage":
            return self.heap_manager.inject_outage()
        if kind == "heap_repair":
            self.heap_manager.repair()
            return 0
        if kind == "reuse_flush":
            return self.reuse_table.inject_flush()
        if kind == "string_config_loss":
            self.string.inject_config_loss()
            return 0
        raise ValueError(f"unknown fault kind: {kind!r}")

    # -- coherence events -----------------------------------------------------------------

    def remote_request(self, base_address: int) -> int:
        """A remote core touched a cached map: flush it via the RTT."""
        self.stats.bump("complex.remote_requests")
        return self.hash_table.flush_map(base_address)

    def l2_eviction(self, base_address: int) -> int:
        """Inclusion enforcement: the map's lines left the L2."""
        self.stats.bump("complex.l2_evictions")
        return self.hash_table.flush_map(base_address)
