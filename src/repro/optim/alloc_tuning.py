"""Allocation tuning (Section 3: "we tuned the applications to reduce
their overhead from expensive memory allocation and deallocation calls
to the kernel").

Two standard tunings are modeled over the slab allocator:

* **larger chunk carving** — fewer ``mmap``-class kernel round trips
  per byte of arena,
* **lazy chunk return** — freed chunks are cached instead of
  ``madvise(DONTNEED)``-ing them back immediately, so request-to-
  request churn stops paying kernel latency.

The measured kernel-call reduction grounds the KERNEL_ALLOC mitigation
factor used in the Section 3 profile re-weighting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import DeterministicRng
from repro.runtime.slab import CHUNK_BYTES, SlabAllocator
from repro.workloads.allocs import AllocOpGenerator, AllocWorkloadSpec


@dataclass
class TuningConfig:
    """The two knobs the Section 3 tuning pass turns."""

    chunk_multiplier: int = 4     # carve 4× bigger chunks
    cache_free_chunks: bool = True


class TunedSlabAllocator(SlabAllocator):
    """Slab allocator with the Section 3 kernel tunings applied."""

    def __init__(self, config: TuningConfig | None = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.tuning = config or TuningConfig()
        #: chunks' worth of address space retained across requests
        self._cached_chunks = 0

    def _refill(self, slab) -> None:
        """Carve one big chunk; prefer a cached arena to the kernel.

        The simulation always hands out fresh simulated addresses (so
        liveness tracking stays exact); what the cache changes is the
        *accounting*: a reuse costs no kernel round trip.
        """
        multiplier = self.tuning.chunk_multiplier
        if self.tuning.cache_free_chunks and self._cached_chunks >= multiplier:
            self._cached_chunks -= multiplier
            self.stats.bump("kernel.chunk_reuses")
        else:
            self.stats.bump("kernel.chunk_allocs")
        big = CHUNK_BYTES * multiplier
        chunk = self._carve(big)
        count = big // slab.block_size
        for i in range(count):
            slab.fresh_list.append(chunk + i * slab.block_size)

    def release_arenas(self) -> int:
        """Lazy return: idle chunks go to the cache, not the kernel."""
        if not self.tuning.cache_free_chunks:
            return super().release_arenas()
        cached = 0
        for slab in self._classes:
            idle_blocks = len(slab.recycle_list) + len(slab.fresh_list)
            idle_bytes = idle_blocks * slab.block_size
            cached += idle_bytes // CHUNK_BYTES
            slab.recycle_list.clear()
            slab.fresh_list.clear()
        self._cached_chunks += cached
        self.stats.bump("kernel.chunks_cached", cached)
        return 0


def measure_alloc_tuning(
    requests: int = 6, seed: int = 7
) -> dict[str, float]:
    """Identical allocation traffic on the stock vs tuned allocator.

    Both allocators see the same per-request op stream followed by a
    request teardown (``release_arenas``); the stock one round-trips
    through the kernel every request, the tuned one almost never after
    warm-up.  Returns the kernel-call reduction fraction (the
    KERNEL_ALLOC mitigation grounding).
    """
    def drive(allocator: SlabAllocator) -> int:
        gen = AllocOpGenerator(AllocWorkloadSpec(), DeterministicRng(seed))
        addresses: dict[int, int] = {}
        for _ in range(requests):
            for op in gen.request_ops():
                if op.kind == "malloc":
                    addresses[op.tag] = allocator.malloc(op.size)
                else:
                    allocator.free(addresses.pop(op.tag))
            allocator.release_arenas()
        return allocator.kernel_calls()

    baseline_calls = drive(SlabAllocator())
    tuned_calls = drive(TunedSlabAllocator())
    reduction = (
        1.0 - tuned_calls / baseline_calls if baseline_calls else 0.0
    )
    return {
        "baseline_kernel_calls": float(baseline_calls),
        "tuned_kernel_calls": float(tuned_calls),
        "reduction": reduction,
        "mitigation_factor": reduction,
    }
