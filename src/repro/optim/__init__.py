"""The Section 3 prior-work mitigations, as mechanisms.

Each module implements one of the four optimizations the paper applies
before designing hardware, so the mitigation factors used by
:func:`repro.workloads.profiles.apply_mitigations` are *grounded* by
measurement rather than assumed:

* :mod:`repro.optim.inline_cache` — hidden classes, inline caches,
  hash map inlining (refs [31, 32, 40]);
* :mod:`repro.optim.typecheck`    — checked-load type checks ([22]);
* :mod:`repro.optim.refcount`     — RC coalescing buffer ([46]);
* :mod:`repro.optim.alloc_tuning` — kernel-call tuning.
"""

from repro.optim.alloc_tuning import (
    TunedSlabAllocator,
    TuningConfig,
    measure_alloc_tuning,
)
from repro.optim.inline_cache import (
    HashMapInliner,
    HiddenClass,
    InlineCache,
    POLYMORPHIC_LIMIT,
    ShapeTree,
)
from repro.optim.refcount import RcCoalescingBuffer, measure_rc_mitigation
from repro.optim.typecheck import CheckedLoadCache, measure_typecheck_mitigation

__all__ = [
    "HiddenClass",
    "ShapeTree",
    "InlineCache",
    "HashMapInliner",
    "POLYMORPHIC_LIMIT",
    "RcCoalescingBuffer",
    "measure_rc_mitigation",
    "CheckedLoadCache",
    "measure_typecheck_mitigation",
    "TunedSlabAllocator",
    "TuningConfig",
    "measure_alloc_tuning",
]
