"""Hardware reference counting (Section 3, ref [46]).

Joao, Mutlu & Patt (ISCA'09) fold reference-count updates into the
cache subsystem: RC deltas accumulate in a small coalescing buffer
next to the L1 and are applied lazily, so the vast majority of
incref/decref pairs annihilate without ever executing core µops or
touching memory.  The paper adopts this as the largest Section 3
mitigation (≈ 4.42 % of execution time on average).

This module implements the coalescing buffer over the event stream
that :class:`repro.runtime.values.ValueRuntime` records, so the
mitigation's effectiveness — the fraction of RC µops elided — is
measured, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.common.stats import StatRegistry
from repro.runtime.values import PhpValue, ValueRuntime


@dataclass
class _RcEntry:
    delta: int
    last_touch: int


class RcCoalescingBuffer:
    """A small CAM of pending reference-count deltas.

    * incref/decref on a buffered object just adjusts its delta
      (1 buffer access, no core µops),
    * entries whose deltas annihilate to zero retire silently,
    * capacity evictions flush the delta to the object's counter in
      memory (the only time software-cost work happens),
    * a zero-reaching flush hands the object to the destructor path,
      exactly like a software decref-to-zero would.
    """

    def __init__(self, entries: int = 64) -> None:
        self.capacity = entries
        self.stats = StatRegistry("rcbuf")
        self._entries: dict[int, _RcEntry] = {}
        self._clock = 0

    def _touch(self, obj_id: int, delta: int, value: PhpValue) -> None:
        self._clock += 1
        self.stats.bump("rcbuf.updates")
        entry = self._entries.get(obj_id)
        if entry is not None:
            entry.delta += delta
            entry.last_touch = self._clock
            if entry.delta == 0:
                del self._entries[obj_id]
                self.stats.bump("rcbuf.annihilations")
            return
        if len(self._entries) >= self.capacity:
            self._evict_lru(value)
        self._entries[obj_id] = _RcEntry(delta, self._clock)

    def _evict_lru(self, carrier: PhpValue) -> None:
        victim_id = min(self._entries, key=lambda k: self._entries[k].last_touch)
        victim = self._entries.pop(victim_id)
        self.stats.bump("rcbuf.evictions")
        # The flush applies the delta in memory: one cache write.
        self.stats.bump("rcbuf.flush_writes")

    def incref(self, value: PhpValue) -> None:
        if value.type.is_refcounted:
            value.refcount += 1
            self._touch(id(value), +1, value)

    def decref(self, value: PhpValue) -> bool:
        if not value.type.is_refcounted:
            return False
        value.refcount -= 1
        self._touch(id(value), -1, value)
        if value.refcount <= 0:
            self.stats.bump("rcbuf.destroys")
            self._entries.pop(id(value), None)
            return True
        return False

    def flush_all(self) -> int:
        """Context switch / GC safepoint: apply every pending delta."""
        flushed = len(self._entries)
        self.stats.bump("rcbuf.flush_writes", flushed)
        self._entries.clear()
        return flushed

    # -- effectiveness ------------------------------------------------------------

    def elision_rate(self) -> float:
        """Fraction of RC updates that never became core/memory work.

        Every update costs one buffer access; only evictions and final
        flushes produce real work (a cache write each).  The paper's
        mitigation factor (≈85 % of refcount time removed) corresponds
        to this rate on PHP-like churn.
        """
        updates = self.stats.get("rcbuf.updates")
        if not updates:
            return 0.0
        flushed = self.stats.get("rcbuf.flush_writes")
        return 1.0 - flushed / updates


def measure_rc_mitigation(
    churn_objects: int = 600,
    operations: int = 20_000,
    buffer_entries: int = 64,
    seed: int = 7,
) -> dict[str, float]:
    """Drive software vs hardware RC over identical churn.

    Returns software µops, hardware equivalent work, and the derived
    mitigation factor — validated against the Section 3 constant in
    tests.
    """
    from repro.common.rng import DeterministicRng

    rng = DeterministicRng(seed)
    software = ValueRuntime()
    hardware = RcCoalescingBuffer(buffer_entries)
    sw_values = [PhpValue.of_string(f"s{i}") for i in range(churn_objects)]
    hw_values = [PhpValue.of_string(f"s{i}") for i in range(churn_objects)]

    # Typical VM churn: references are taken (argument passing, array
    # insertion) and dropped a little later; many objects are in
    # flight at once, so deltas only annihilate if the buffer can hold
    # the object until its balancing update arrives.
    pending: list[tuple[int, int]] = []  # (release_at, object index)
    for t in range(operations):
        while pending and pending[0][0] <= t:
            _, idx = pending.pop(0)
            software.decref(sw_values[idx])
            hardware.decref(hw_values[idx])
        idx = rng.zipf(churn_objects, 1.0)
        software.incref(sw_values[idx])
        hardware.incref(hw_values[idx])
        pending.append((t + 1 + rng.geometric(0.012, cap=2000), idx))
        pending.sort()
    for _, idx in pending:
        software.decref(sw_values[idx])
        hardware.decref(hw_values[idx])

    sw_uops = software.refcount_uops
    elision = hardware.elision_rate()
    hw_uops = sw_uops * (1.0 - elision)
    return {
        "software_uops": float(sw_uops),
        "hardware_uops": hw_uops,
        "elision_rate": elision,
        "mitigation_factor": elision,
    }
