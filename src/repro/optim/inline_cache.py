"""Inline caching and hash map inlining (Section 3, refs [31, 32, 40]).

Modern JITs specialize member accesses on dynamically-typed objects
with **inline caches** (IC): each access site remembers the *hidden
class* (shape) it last saw and the member's offset within it, so the
access becomes "check shape, load offset".  **Hash map inlining**
(HMI, Gope & Lipasti PACT'16 [40]) extends the idea to hash maps
"with variable though predictable key names": a site that observes a
stable key sequence gets the bucket offsets burned into its inline
cache.

The paper's point — the reason the hardware hash table exists — is
that real PHP applications perform many accesses with *dynamic* key
names that neither technique can capture.  This module implements the
software machinery (hidden classes, mono/poly/megamorphic ICs, HMI
site profiling) so that the mitigation factor applied in Section 3's
re-weighting is *derived* from trace behavior rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.stats import StatRegistry
from repro.workloads.hashops import HashOp

#: IC sites track at most this many shapes before going megamorphic.
POLYMORPHIC_LIMIT = 4
#: µop costs of the access flavors.
UOPS_OFFSET_ACCESS = 3     # shape check + offset load
UOPS_POLY_DISPATCH = 7     # chain of shape compares
UOPS_MEGAMORPHIC = 12      # IC miss path into the runtime lookup


@dataclass(frozen=True)
class HiddenClass:
    """A shape: an ordered tuple of property names with fixed offsets.

    Adding a property transitions to a (cached) successor shape, as in
    SELF/V8; two objects built with the same property order share a
    shape, which is what lets an IC specialize on it.
    """

    properties: tuple[str, ...]

    def offset_of(self, name: str) -> Optional[int]:
        try:
            return self.properties.index(name)
        except ValueError:
            return None


class ShapeTree:
    """The transition tree interning hidden classes."""

    def __init__(self) -> None:
        self.root = HiddenClass(())
        self._transitions: dict[tuple[HiddenClass, str], HiddenClass] = {}
        self.stats = StatRegistry("shapes")

    def transition(self, shape: HiddenClass, name: str) -> HiddenClass:
        """Shape after adding property ``name`` (interned)."""
        if shape.offset_of(name) is not None:
            return shape
        key = (shape, name)
        nxt = self._transitions.get(key)
        if nxt is None:
            nxt = HiddenClass(shape.properties + (name,))
            self._transitions[key] = nxt
            self.stats.bump("shapes.created")
        return nxt

    @property
    def shape_count(self) -> int:
        return len(self._transitions) + 1


@dataclass
class _IcEntry:
    shape: HiddenClass
    offset: int


class InlineCache:
    """One access site's inline cache (mono → poly → megamorphic)."""

    def __init__(self, site: int) -> None:
        self.site = site
        self.entries: list[_IcEntry] = []
        self.megamorphic = False

    @property
    def state(self) -> str:
        if self.megamorphic:
            return "megamorphic"
        if not self.entries:
            return "uninitialized"
        return "monomorphic" if len(self.entries) == 1 else "polymorphic"

    def access(self, shape: HiddenClass, name: str) -> tuple[bool, int]:
        """Look up ``name`` on an object of ``shape`` at this site.

        Returns ``(specialized, uops)``: whether the access stayed on
        the IC fast path, and what it cost.
        """
        if self.megamorphic:
            return False, UOPS_MEGAMORPHIC
        for i, entry in enumerate(self.entries):
            if entry.shape == shape:
                cost = UOPS_OFFSET_ACCESS if i == 0 else UOPS_POLY_DISPATCH
                # Move-to-front keeps the hot shape on the cheap path.
                if i:
                    self.entries.insert(0, self.entries.pop(i))
                return True, cost
        offset = shape.offset_of(name)
        if offset is None:
            return False, UOPS_MEGAMORPHIC
        self.entries.insert(0, _IcEntry(shape, offset))
        if len(self.entries) > POLYMORPHIC_LIMIT:
            self.megamorphic = True
            self.entries.clear()
            return False, UOPS_MEGAMORPHIC
        return True, UOPS_MEGAMORPHIC  # the miss that installed the entry


@dataclass
class _HmiSite:
    """HMI profile of one hash-access site (PACT'16 [40], §3)."""

    expected_sequence: list[str] = field(default_factory=list)
    position: int = 0
    confirmations: int = 0
    recording: bool = True
    broken: bool = False

    CONFIDENT_AFTER = 3   # sequence repetitions before specializing
    MAX_SEQUENCE = 64     # longer sequences are not worth inlining

    def observe(self, key: str) -> bool:
        """Feed the next key; returns True when the access may inline.

        The site records keys until the sequence wraps (the first key
        recurs), then verifies the learned cycle on subsequent passes;
        once confirmed, accesses follow offset loads until a key
        deviates, which permanently de-specializes the site (HMI falls
        back to the normal walk).
        """
        if self.broken:
            return False
        if self.recording:
            if self.expected_sequence and key == self.expected_sequence[0]:
                # The cycle wrapped: switch to verification.
                self.recording = False
                self.position = 1
                return False
            self.expected_sequence.append(key)
            if len(self.expected_sequence) > self.MAX_SEQUENCE:
                self.broken = True
            return False
        if self.position >= len(self.expected_sequence):
            self.position = 0
            self.confirmations += 1
        if self.expected_sequence[self.position] != key:
            self.broken = True
            return False
        self.position += 1
        return self.confirmations >= self.CONFIDENT_AFTER


class HashMapInliner:
    """Applies IC + HMI to a hash-op trace.

    Classifies every GET/SET as *specialized* (IC/HMI fast path) or
    *residual* (dynamic keys — what the hardware hash table targets),
    and accounts the µops of each.  The residual fraction is the
    empirical grounding of the Section 3 IC/HMI mitigation factor.
    """

    def __init__(self) -> None:
        self.stats = StatRegistry("hmi")
        self._sites: dict[int, _HmiSite] = {}

    def site_for(self, op: HashOp) -> int:
        """Access-site identity for an op.

        Site identity in a JIT is the bytecode location; the generator
        encodes it in the op stream: global-table accesses come from a
        handful of template sites (map_id), short-lived-map traffic
        from extract/scope sites whose keys are dynamic per request.
        """
        if op.map_id < 0:
            return -op.map_id  # template site per global table
        return 1_000_000 + (op.map_id % 7)  # extract/scope call sites

    def filter(self, ops: list[HashOp]) -> list[HashOp]:
        """Split a trace: specialized accesses are absorbed, the
        *residual* ops (dynamic keys) are returned for the hash map —
        and, in the accelerated configuration, the hardware hash table.
        Non-access ops (alloc/free/foreach) always pass through.
        """
        residual: list[HashOp] = []
        for op in ops:
            if op.kind not in ("get", "set"):
                residual.append(op)
                continue
            site = self._sites.setdefault(self.site_for(op), _HmiSite())
            if op.map_id > 0:
                # Dynamic key names (extract, scope communication):
                # "cannot be converted to regular offset accesses by
                # software methods".
                site.broken = True
            if site.observe(op.key):
                self.stats.bump("hmi.specialized")
                self.stats.bump("hmi.fast_uops", UOPS_OFFSET_ACCESS)
            else:
                self.stats.bump("hmi.residual")
                residual.append(op)
        return residual

    def process(self, ops: list[HashOp]) -> dict[str, float]:
        """Run the trace; returns the specialization summary."""
        before = self.stats.snapshot()
        self.filter(ops)
        delta = self.stats.diff(before)
        specialized = delta.get("hmi.specialized", 0)
        residual = delta.get("hmi.residual", 0)
        total = specialized + residual
        return {
            "specialized": float(specialized),
            "residual": float(residual),
            "specialized_fraction": specialized / total if total else 0.0,
            "fast_path_uops": float(delta.get("hmi.fast_uops", 0)),
        }

    def specialized_fraction(self) -> float:
        """Lifetime fraction of accesses absorbed by IC/HMI."""
        specialized = self.stats.get("hmi.specialized")
        total = specialized + self.stats.get("hmi.residual")
        return specialized / total if total else 0.0
