"""Checked-load type checking (Section 3, ref [22]).

Anderson et al. (HPCA'11) move the dynamic type check that guards
JIT-specialized code into the cache subsystem: a *checked load*
carries the expected type tag, the cache compares it against a tag
stored alongside the line, and only a mismatch traps to the software
path.  The guard's compare-and-branch µops disappear from the core.

This module models the tagged cache line store and the checked-load
instruction over the type-check event stream, measuring the fraction
of guard work elided (the Section 3 mitigation factor for the
type-check category).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.stats import StatRegistry
from repro.runtime.values import PhpType, PhpValue, ValueRuntime


class CheckedLoadCache:
    """Type tags held line-side; checks run in the cache, not the core.

    A checked load costs the same as a plain load (the comparison is
    free in cache logic); only mistyped values (guard failures) pay
    the trap cost, matching the HPCA'11 design.
    """

    TRAP_UOPS = 30  # pipeline flush + deopt handler entry

    def __init__(self) -> None:
        self.stats = StatRegistry("checkedload")
        self._tags: dict[int, PhpType] = {}

    def store(self, value: PhpValue) -> None:
        """A store writes the value's tag alongside the data."""
        self._tags[id(value)] = value.type
        self.stats.bump("checkedload.stores")

    def checked_load(self, value: PhpValue, expected: PhpType) -> tuple[bool, int]:
        """Load with an in-cache type check.

        Returns (guard passed, extra µops beyond the plain load).
        """
        self.stats.bump("checkedload.loads")
        tag = self._tags.get(id(value), value.type)
        if tag is expected:
            self.stats.bump("checkedload.hits")
            return True, 0
        self.stats.bump("checkedload.traps")
        return False, self.TRAP_UOPS

    def elision_rate(self) -> float:
        """Fraction of guard µops removed vs software checks."""
        loads = self.stats.get("checkedload.loads")
        if not loads:
            return 0.0
        traps = self.stats.get("checkedload.traps")
        software_uops = loads * ValueRuntime.UOPS_PER_TYPE_CHECK
        hardware_uops = traps * self.TRAP_UOPS
        return max(0.0, 1.0 - hardware_uops / software_uops)


def measure_typecheck_mitigation(
    operations: int = 20_000,
    mistyped_fraction: float = 0.005,
    seed: int = 7,
) -> dict[str, float]:
    """Drive software vs checked-load guards over identical accesses.

    PHP guard failures are rare once the JIT has specialized (the
    default models one deopt per two hundred accesses); the derived
    mitigation factor is validated against Section 3's constant.
    """
    from repro.common.rng import DeterministicRng

    rng = DeterministicRng(seed)
    software = ValueRuntime()
    hardware = CheckedLoadCache()
    int_value = PhpValue.of_int(1)
    str_value = PhpValue.of_string("x")
    hardware.store(int_value)
    hardware.store(str_value)

    for _ in range(operations):
        value = str_value if rng.random() < mistyped_fraction else int_value
        software.type_check(value, PhpType.INT)
        hardware.checked_load(value, PhpType.INT)

    return {
        "software_uops": float(software.typecheck_uops),
        "elision_rate": hardware.elision_rate(),
        "mitigation_factor": hardware.elision_rate(),
    }
