#!/usr/bin/env bash
# Repo health check: lint (when ruff is available) + the tier-1 suite.
#
# Usage: scripts/check.sh
# Exits non-zero if lint or tests fail. ruff is optional tooling — the
# container image does not ship it and the repo policy forbids
# installing packages, so the lint step is skipped with a notice when
# the module is missing.

set -euo pipefail
cd "$(dirname "$0")/.."

if python -c "import ruff" >/dev/null 2>&1 || command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    if command -v ruff >/dev/null 2>&1; then
        ruff check src tests benchmarks
    else
        python -m ruff check src tests benchmarks
    fi
else
    echo "== ruff: not installed, skipping lint =="
fi

echo "== repro lint =="
# Static analysis: determinism (DET0xx), pool purity (POOL0xx), cache
# soundness (KEY0xx), async safety (ASY0xx), schema contracts
# (SCH0xx). Blocking; the repro-lint/2 JSON payload is kept for the
# CI artifact upload whether or not the gate passes.
mkdir -p benchmarks/out/lint
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
    python -m repro lint --json > benchmarks/out/lint/findings.json \
    || { cat benchmarks/out/lint/findings.json; exit 1; }
# One-line per-family count table, re-validated through the payload's
# own schema checker; lands in the lint artifact next to the payload.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python - <<'PY' \
    | tee benchmarks/out/lint/summary.txt
import json
from repro.analysis import RULES, rule_family, validate_lint_payload
with open("benchmarks/out/lint/findings.json") as fh:
    payload = json.load(fh)
validate_lint_payload(payload)
families = sorted({rule_family(rule) for rule in RULES})
cells = "  ".join(
    f"{family}={payload['families'].get(family, 0)}"
    for family in families
)
print(f"lint families: {cells}  (total={len(payload['findings'])})")
PY
echo "repro lint clean"

echo "== tier-1 tests =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q

echo "== fleet smoke =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
    python -m repro fleet --smoke --requests 2 >/dev/null
echo "fleet smoke ok"

echo "== perf smoke (per backend) =="
# Schema validation only (run_perf validates its payload); speedup
# floors are asserted by benchmarks/bench_perf.py on real hardware,
# never here — shared-runner wall-clock ratios are unreliable.  One
# smoke run per available non-reference backend (`optimized` always;
# `bulk` when numpy is present), keeping a per-backend report copy
# for the CI artifact upload.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
    python -m repro backends
for backend in $(PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -c \
    "from repro.accel.registry import measured_backends
print('\n'.join(measured_backends()))"); do
    echo "-- perf smoke [$backend] --"
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro perf --smoke --backend "$backend" >/dev/null
    cp benchmarks/out/perf.txt "benchmarks/out/perf_${backend}.txt"
done
# Leave the committed artifacts covering every backend at once.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
    python -m repro perf --smoke >/dev/null
echo "perf smoke ok"

echo "== overload smoke =="
# Metastability demo: the undefended flash-crowd + retry-storm run
# must read METASTABLE and the defended run must recover; the report
# lands in benchmarks/out/ for the CI artifact upload.
mkdir -p benchmarks/out
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
    python -m repro overload --smoke > benchmarks/out/overload_smoke.txt
grep -q "METASTABLE" benchmarks/out/overload_smoke.txt
echo "overload smoke ok"

echo "== serve smoke =="
# Live serving gate (blocking): a real asyncio HTTP server under 1k
# keep-alive connections of open-loop load must clear the 95% goodput
# SLO and the served-bytes oracle. The report and per-request
# telemetry land in benchmarks/out/ for the CI artifact upload.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
    python -m repro serve --bench --smoke > benchmarks/out/serve_smoke.txt
grep -q "PASS" benchmarks/out/serve_smoke.txt
echo "serve smoke ok"

echo "== calibrate smoke =="
# Digital-twin calibration gate (blocking): the twin generates
# telemetry from known ground truth, the fitters recover it blind,
# and the fitted twin's predictions must land inside the pinned MAPE
# bounds (p99 and hit ratio <= 10%). calibration.json lands in
# benchmarks/out/ for the CI artifact upload.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
    python -m repro calibrate --smoke > benchmarks/out/calibrate_smoke.txt
grep -q "PASS" benchmarks/out/calibrate_smoke.txt
test -s benchmarks/out/calibration.json
echo "calibrate smoke ok"

echo "== conformance smoke =="
# Differential oracles + simulator invariants; exits non-zero on any
# divergence and writes shrunk repros to benchmarks/out/conformance/
# for the CI artifact upload.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
    python -m repro conform --smoke >/dev/null
echo "conformance smoke ok"
